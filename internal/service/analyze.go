// POST /sweep/analyze: run a parameter grid and answer with one
// deterministic analysis document instead of an NDJSON row stream.
//
// The request is a /sweep grid plus an analysis selector (metric,
// objective, top-K, Pareto frontier — internal/agg); the variants run
// through exactly the same cache/singleflight/pool path as /sweep
// (collectRows), so an analysis warms the same result space a sweep
// or a direct /run would, and a warm grid analyzes at cache speed
// with zero simulations. The document is a pure function of the
// result set: a single process and a sharded cluster (whose router
// aggregates router-side) answer the same grid with byte-identical
// bytes, which the smokes assert.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/agg"
	"repro/internal/sched"
)

// AnalyzeRequest is the body of POST /sweep/analyze — a sweep grid
// plus the analysis selector, both inlined. The wire contract is
// shared with frontends: the shard router decodes one to partition
// the same grid and aggregate router-side.
type AnalyzeRequest struct {
	SweepRequest
	agg.Request
}

// handleAnalyze serves POST /sweep/analyze.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	id, err := s.requestIdent(r, sched.Batch)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.analyzeGrid(w, r, req, id)
}

// analyzeGrid runs the decoded analysis request — the shared engine
// of POST /sweep/analyze (grid inlined) and POST /sweep/{id}/analyze
// (grid from the stored manifest), which is what makes the two
// byte-identical on the same result space. Rows are folded into
// metric inputs as they complete, so a 100k-variant analysis holds
// per-variant metrics, never the full result bodies.
func (s *Server) analyzeGrid(w http.ResponseWriter, r *http.Request, req AnalyzeRequest, aid ident) {
	grid, total, err := ResolveSweepGrid(req.SweepRequest, s.scenarioByName, s.maxSweepVariants)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := CheckGridCycleCaps(grid, s.checkCycleCap); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	model, compare, err := sweepModel(req.Model)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// Reject a bad analysis selector BEFORE the grid costs anything:
	// an unknown metric must not burn 100k simulations first.
	if err := req.Request.Validate(compare); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := SweepID(req.SweepRequest, s.scenarioByName)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	inputs := make([]agg.Input, 0, min(total, sweepChunkSize))
	distinct, complete := s.collectGrid(r.Context(), grid, -1, model, compare, aid, func(row SweepRow) {
		inputs = append(inputs, AnalyzeInput(compare, row))
	})
	if !complete {
		return // client gone; in-flight jobs still fill the cache
	}
	doc, err := agg.Analyze(req.Request, compare, AggAxes(req.Axes), distinct, inputs)
	if err != nil {
		// The grid ran but the analysis cannot be computed from its
		// results (a per-master metric naming a port the workload lacks
		// slips past static validation). The results are cached, so a
		// corrected request replays for free.
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(doc)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(total))
	w.Header().Set(SweepIDHeader, id)
	s.writeBody(w, http.StatusOK, body, "", "")
}

// AnalyzeInput folds one completed sweep row into an aggregation
// input: metrics parsed, result body dropped. It is shared between
// the backend and the shard router so both ends of a deployment
// derive byte-identical documents from identical row sets — same
// metric extraction, same error surfacing.
func AnalyzeInput(compare bool, row SweepRow) agg.Input {
	in := agg.Input{Index: row.Index, Name: row.Name, Hash: row.Hash, Params: row.Params}
	if row.Error != "" {
		in.Err = row.Error
	} else if m, err := agg.MetricsFromResult(compare, row.Result); err != nil {
		in.Err = fmt.Sprintf("parsing result: %v", err)
	} else {
		in.Metrics = m
	}
	return in
}

// AggAxes converts wire axes to aggregation axes.
func AggAxes(axes []SweepAxis) []agg.Axis {
	aaxes := make([]agg.Axis, len(axes))
	for i, ax := range axes {
		aaxes[i] = agg.Axis{Param: ax.Param, Values: ax.Values}
	}
	return aaxes
}

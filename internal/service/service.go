// Package service is the simulation service: an HTTP JSON API that
// accepts declarative workload specs (internal/spec), runs them on
// the simulation kernels, and serves results at scale.
//
// Three mechanisms carry the load so the simulators don't have to:
//
//   - Content-addressed result cache. Every simulation here is
//     bit-reproducible, so a spec's SHA-256 content hash fully
//     determines its result; repeat requests are answered from an LRU
//     cache with the byte-identical body of the first response,
//     without re-simulation. With a store directory configured, the
//     cache is two-tier: an in-memory LRU in front of a disk-backed
//     result store (internal/store), so cached replays survive
//     process restarts byte-identically.
//   - Request coalescing (singleflight). Duplicate requests that
//     arrive while the first is still simulating attach to the
//     in-flight job and all receive its result — N identical
//     submissions cost one simulation.
//   - Tenant-aware weighted-fair execution with backpressure. Jobs
//     execute through a sched.Scheduler over workers sized to the
//     host's cores: requests queue per (tenant, class) — interactive
//     /run and /compare outweigh sweep backfill, tenants share their
//     class equally — and each class has its own admission cap; at
//     the cap, submissions of THAT class are rejected with 503 plus
//     a Retry-After derived from that class's own backlog instead of
//     queueing unboundedly (or being blamed for another class's
//     backlog). Tenant identity rides the X-Tenant request header
//     (Options.TenantHeader), class the X-Class header.
//
// Endpoints: POST /run, POST /compare, POST /sweep (NDJSON parameter
// grids; see sweep.go), POST /sweep/analyze (grid aggregates —
// argmin/top-K/groups/Pareto frontier; see analyze.go), GET
// /scenarios, GET /healthz.
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Options sizes a server.
type Options struct {
	// Workers is the run-farm worker count (<= 0: one per CPU).
	Workers int
	// Queue is the bounded job-queue depth PER CLASS (<= 0: 2x
	// workers): a full batch queue rejects batch submissions and
	// nothing else.
	Queue int
	// CacheEntries caps the in-memory result cache (<= 0:
	// DefaultCacheEntries).
	CacheEntries int
	// StoreDir roots the disk-backed result store; empty runs the
	// server memory-only (results die with the process).
	StoreDir string
	// StoreMaxBytes bounds the disk store's payload (<= 0:
	// store.DefaultMaxBytes). Ignored without StoreDir.
	StoreMaxBytes int64
	// RequestTimeout bounds one simulation job, measured from
	// submission (queue wait counts — that is the time the client
	// experiences). A job over budget is interrupted at the next cycle
	// slice and answered 504; the worker is back in the pool
	// immediately, never poisoned by a pathological spec. <= 0: no
	// deadline.
	RequestTimeout time.Duration
	// MaxCycles caps any accepted spec's max_cycles at validation
	// time, rejecting pathological cycle budgets with a 400 before
	// they cost a worker (<= 0: the global spec.MaxRunCycles bound).
	MaxCycles uint64
	// MaxSweepVariants caps one sweep grid's full Cartesian product
	// (<= 0: DefaultMaxSweepVariants). The shard router carries the
	// same option; both tiers resolve it through ResolveSweepGrid, so
	// the limit cannot drift between a backend and its frontend.
	MaxSweepVariants int
	// ClassWeights overrides the scheduler's per-class dispatch
	// weights, keyed by class wire name ("interactive", "batch").
	// Missing classes keep their defaults; New rejects unknown names.
	ClassWeights map[string]int
	// TenantHeader names the request header carrying tenant identity
	// (empty: DefaultTenantHeader). A request without the header (or
	// with an invalid value — rejected 400) queues as
	// sched.DefaultTenant.
	TenantHeader string
	// DisableFairness collapses scheduling to one tenant and one
	// class — a single FIFO queue with a single cap, the pre-fairness
	// behavior. An operational escape hatch (-fair=false), not a
	// recommended mode.
	DisableFairness bool
}

// DefaultCacheEntries is the default result-cache capacity.
const DefaultCacheEntries = 1024

// Counters is a snapshot of the server's load counters.
type Counters struct {
	// Jobs is the number of simulation jobs executed (a /compare
	// counts once; it runs both models inside one job).
	Jobs uint64 `json:"jobs"`
	// CacheHits counts requests answered from the result cache.
	CacheHits uint64 `json:"cache_hits"`
	// Coalesced counts requests that attached to an in-flight job.
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts requests refused with 503 under backpressure.
	Rejected uint64 `json:"rejected"`
	// StoreHits counts the cache hits served from the disk store
	// (a subset of CacheHits).
	StoreHits uint64 `json:"store_hits"`
	// Timeouts counts simulations aborted 504 at the request deadline.
	Timeouts uint64 `json:"timeouts"`
}

// Server is the simulation service.
type Server struct {
	sched *sched.Scheduler
	mux   *http.ServeMux
	cache *lru
	// disk is the persistent result tier behind the memory LRU; nil
	// when the server runs memory-only.
	disk *store.Store

	mu      sync.Mutex
	flights map[string]*flight

	jobs, hits, coalesced, rejected, storeHits, timeouts atomic.Uint64
	workers, queue                                       int
	requestTimeout                                       time.Duration
	maxSpecCycles                                        uint64
	maxSweepVariants                                     int
	tenantHeader                                         string
	fairnessOff                                          bool

	// manifestMu serializes sweep-manifest read-merge-write
	// checkpoints, so two streams of the same sweep id never lose
	// each other's progress bits.
	manifestMu sync.Mutex
	// since is when this process started serving — the monotonic
	// anchor /healthz and /version expose so cluster consumers can
	// tell a respawned worker's counter reset from counters that
	// really went backwards.
	since time.Time

	// reg is the metric registry behind GET /metrics; httpMetrics the
	// per-endpoint request instrumentation; the counters below are the
	// metrics incremented outside metrics.go (streamed sweep rows,
	// manifest checkpoints, resume streams, stolen-result write-backs).
	reg              *obs.Registry
	httpMetrics      *obs.HTTPMetrics
	sweepRows        *obs.Counter
	sweepCheckpoints *obs.Counter
	sweepResumes     *obs.Counter
	stolenResults    *obs.Counter

	// The scenario library is immutable for the server's lifetime:
	// the /scenarios body and the by-name index are built once in New
	// instead of re-hashing every spec per request.
	scenariosBody  []byte
	scenarioByName map[string]spec.Spec
}

// flight is one in-progress simulation job; duplicate requests wait
// on done and read body/status. terminal marks a 503 caused by pool
// shutdown (not saturation), so waiters that coalesced onto the
// refused flight surface the same "stop retrying" signal the leader
// got — without it, every coalesced sweep variant would burn one full
// Retry-After backoff against a server that is going away.
type flight struct {
	done     chan struct{}
	body     []byte
	status   int
	terminal bool
	// timing is the leader's per-stage breakdown (set before done
	// closes); coalesced waiters share it, cache hits have none.
	timing *Timing
}

// dispositionClosed marks a 503 produced by a closed (shutting-down)
// pool rather than a saturated one — terminal, never worth retrying.
// It is internal routing state, not an X-Cache value: writeBody never
// emits a disposition for 503s.
const dispositionClosed = "closed"

// New starts a server (its scheduler's workers run until Close). With
// a StoreDir it opens (or resumes) the disk-backed result store
// there, so a restarted server replays previously computed results
// byte-identically.
func New(opt Options) (*Server, error) {
	weights := make(map[sched.Class]int, len(opt.ClassWeights))
	for name, w := range opt.ClassWeights {
		c, ok := sched.ParseClass(name)
		if !ok {
			return nil, fmt.Errorf("service: unknown scheduling class %q in ClassWeights", name)
		}
		weights[c] = w
	}
	if opt.TenantHeader == "" {
		opt.TenantHeader = DefaultTenantHeader
	}
	if opt.CacheEntries <= 0 {
		opt.CacheEntries = DefaultCacheEntries
	}
	var disk *store.Store
	if opt.StoreDir != "" {
		var err error
		disk, err = store.Open(opt.StoreDir, opt.StoreMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	maxSpecCycles := opt.MaxCycles
	if maxSpecCycles == 0 {
		maxSpecCycles = spec.MaxRunCycles
	}
	if opt.MaxSweepVariants <= 0 {
		opt.MaxSweepVariants = DefaultMaxSweepVariants
	}
	scheduler := sched.New(sched.Options{Workers: opt.Workers, Queue: opt.Queue, Weights: weights})
	s := &Server{
		sched:            scheduler,
		cache:            newLRU(opt.CacheEntries),
		disk:             disk,
		flights:          make(map[string]*flight),
		workers:          scheduler.Workers(),
		queue:            scheduler.QueueCap(),
		requestTimeout:   opt.RequestTimeout,
		maxSpecCycles:    maxSpecCycles,
		maxSweepVariants: opt.MaxSweepVariants,
		tenantHeader:     opt.TenantHeader,
		fairnessOff:      opt.DisableFairness,
		since:            time.Now(),
	}
	s.buildScenarioLibrary()
	s.initMetrics()
	s.mux = http.NewServeMux()
	// Every endpoint goes through the instrumentation middleware: the
	// request-ID contract and the per-endpoint series cover the whole
	// surface, /metrics and /version included (a scrape snapshots its
	// counters before its own increment, so it never counts itself).
	handle := func(pattern string, h http.Handler) {
		s.mux.Handle(pattern, s.httpMetrics.Wrap(pattern, h))
	}
	handle("/run", http.HandlerFunc(s.handleRun))
	handle("/compare", http.HandlerFunc(s.handleCompare))
	handle("/sweep", http.HandlerFunc(s.handleSweep))
	handle("/sweep/analyze", http.HandlerFunc(s.handleAnalyze))
	handle("/sweep/{id}", http.HandlerFunc(s.handleSweepStatus))
	handle("/sweep/{id}/resume", http.HandlerFunc(s.handleSweepResume))
	handle("/sweep/{id}/analyze", http.HandlerFunc(s.handleSweepStoredAnalyze))
	handle("/results", http.HandlerFunc(s.handleResults))
	handle("/scenarios", http.HandlerFunc(s.handleScenarios))
	handle("/healthz", http.HandlerFunc(s.handleHealthz))
	handle("/metrics", s.reg.Handler())
	handle("/version", VersionHandler(s.since))
	return s, nil
}

// buildScenarioLibrary hashes and indexes the built-in scenario set
// once.
func (s *Server) buildScenarioLibrary() {
	s.scenariosBody, s.scenarioByName = ScenarioLibrary()
}

// ScenarioLibrary builds the wire form of the built-in scenario set:
// the exact /scenarios response body and the name → spec index behind
// it. Every process in a deployment — single server or shard router
// plus backends — derives the library from the same spec data, so a
// scenario name resolves to the same content hash everywhere. The
// library is static configuration, so a failure here is a programming
// error, not a request error.
func ScenarioLibrary() (body []byte, byName map[string]spec.Spec) {
	scenarios := spec.Scenarios()
	infos := make([]ScenarioInfo, 0, len(scenarios))
	byName = make(map[string]spec.Spec, len(scenarios))
	for _, sp := range scenarios {
		hash, err := sp.Hash()
		if err != nil {
			panic(fmt.Sprintf("service: hashing library scenario %s: %v", sp.Name, err))
		}
		kinds := make([]string, len(sp.Masters))
		for i, g := range sp.Masters {
			kinds[i] = g.Kind
		}
		infos = append(infos, ScenarioInfo{Name: sp.Name, Hash: hash, Masters: len(sp.Masters), Kinds: kinds})
		byName[sp.Name] = sp
	}
	body, err := json.Marshal(infos)
	if err != nil {
		panic(fmt.Sprintf("service: encoding scenario library: %v", err))
	}
	return body, byName
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the scheduler's queues, stops the workers, and flushes
// the disk store's startup index so the next Open is O(1) file reads.
// An index flush failure is logged, not fatal: the next Open falls
// back to a loud full rescan and loses nothing but startup time.
func (s *Server) Close() {
	s.sched.Close()
	if s.disk != nil {
		if err := s.disk.Close(); err != nil {
			log.Printf("store: flushing startup index at close: %v", err)
		}
	}
}

// CountersSnapshot returns the current load counters.
func (s *Server) CountersSnapshot() Counters {
	return Counters{
		Jobs:      s.jobs.Load(),
		CacheHits: s.hits.Load(),
		Coalesced: s.coalesced.Load(),
		Rejected:  s.rejected.Load(),
		StoreHits: s.storeHits.Load(),
		Timeouts:  s.timeouts.Load(),
	}
}

// RunRequest is the body of POST /run and POST /compare — the wire
// contract shared with frontends (the shard router forwards these
// verbatim). Exactly one of Spec and Scenario selects the workload.
type RunRequest struct {
	// Spec is an inline workload spec.
	Spec *spec.Spec `json:"spec,omitempty"`
	// Scenario names a spec from the built-in library (GET /scenarios).
	Scenario string `json:"scenario,omitempty"`
	// Model selects the abstraction level for /run: "tl" (default) or
	// "rtl". Ignored by /compare, which always runs both.
	Model string `json:"model,omitempty"`
}

// RunResponse is the deterministic body of POST /run. Wall-clock time
// is deliberately absent: the body is a pure function of the spec, so
// cached replays are byte-identical to the first response.
type RunResponse struct {
	Name       string     `json:"name"`
	Hash       string     `json:"hash"`
	Model      string     `json:"model"`
	Cycles     uint64     `json:"cycles"`
	Completed  bool       `json:"completed"`
	Violations uint64     `json:"violations"`
	Stats      *stats.Bus `json:"stats,omitempty"`
}

// CompareResponse is the deterministic body of POST /compare: one
// Table 1 accuracy row.
type CompareResponse struct {
	Name      string  `json:"name"`
	Hash      string  `json:"hash"`
	RTLCycles uint64  `json:"rtl_cycles"`
	TLMCycles uint64  `json:"tl_cycles"`
	DiffPct   float64 `json:"diff_pct"`
	Completed bool    `json:"completed"`
}

// ScenarioInfo is one entry of GET /scenarios.
type ScenarioInfo struct {
	Name    string   `json:"name"`
	Hash    string   `json:"hash"`
	Masters int      `json:"masters"`
	Kinds   []string `json:"kinds"`
}

// errorResponse is the body of every non-2xx reply. RequestID echoes
// the request's X-Request-ID so a client error report names the exact
// request in the logs; it is injected at write time (error bodies are
// never cached, so the injection can't leak into replayed 200s).
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// maxBodyBytes bounds a request body; a spec is small.
const maxBodyBytes = 1 << 20

// decodeRequest parses and validates the request, resolving a library
// scenario name if used. It returns the decoded request (for the
// model selector), the workload spec, its content hash and the
// compiled workload.
func (s *Server) decodeRequest(r *http.Request) (RunRequest, spec.Spec, string, core.Workload, error) {
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, spec.Spec{}, "", core.Workload{}, fmt.Errorf("parsing request: %w", err)
	}
	var sp spec.Spec
	switch {
	case req.Spec != nil && req.Scenario != "":
		return req, sp, "", core.Workload{}, fmt.Errorf("request has both spec and scenario; send one")
	case req.Spec != nil:
		sp = *req.Spec
	case req.Scenario != "":
		found, ok := s.scenarioByName[req.Scenario]
		if !ok {
			return req, sp, "", core.Workload{}, fmt.Errorf("unknown scenario %q", req.Scenario)
		}
		sp = found
	default:
		return req, sp, "", core.Workload{}, fmt.Errorf("request needs a spec or a scenario name")
	}
	if err := s.checkCycleCap(sp); err != nil {
		return req, sp, "", core.Workload{}, err
	}
	w, err := core.FromSpec(sp)
	if err != nil {
		return req, sp, "", core.Workload{}, err
	}
	hash, err := sp.Hash()
	if err != nil {
		return req, sp, "", core.Workload{}, err
	}
	return req, sp, hash, w, nil
}

// checkCycleCap enforces the server's configured max_cycles cap — a
// validation-time rejection, so a pathological cycle budget costs a
// 400, not a worker. The global spec.MaxRunCycles bound is enforced
// by spec.Validate regardless; this is the deployment's (usually
// tighter) limit.
func (s *Server) checkCycleCap(sp spec.Spec) error {
	if sp.MaxCycles > s.maxSpecCycles {
		return fmt.Errorf("spec %s: max_cycles %d exceeds the server cap %d", sp.Name, sp.MaxCycles, s.maxSpecCycles)
	}
	return nil
}

// CheckGridCycleCaps runs check against every distinct max_cycles
// value the grid can produce WITHOUT expanding it: a variant's
// effective budget is either the last max_cycles axis value applied
// or the base spec's, so checking the base (or each value of the
// last max_cycles axis against a base clone) is exact at O(axis
// values) cost — a 100k-variant grid's cycle cap costs a handful of
// clones, not 100k spec builds. Shared with the shard router, whose
// check carries the cluster-cap message.
func CheckGridCycleCaps(grid sweep.Grid, check func(spec.Spec) error) error {
	var last *sweep.Axis
	for i := range grid.Axes {
		if grid.Axes[i].Param == sweep.ParamMaxCycles {
			last = &grid.Axes[i]
		}
	}
	if last == nil {
		return check(grid.Base)
	}
	for _, v := range last.Values {
		sp := grid.Base.Clone()
		if err := sweep.Apply(&sp, sweep.ParamMaxCycles, v.V); err != nil {
			return fmt.Errorf("sweep: axis %q value %v: %w", sweep.ParamMaxCycles, v.V, err)
		}
		if err := check(sp); err != nil {
			return err
		}
	}
	return nil
}

// handleRun serves POST /run: one workload through one model.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, sp, hash, wl, err := s.decodeRequest(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	model := core.TLM
	switch req.Model {
	case "", "tl", "tlm":
	case "rtl":
		model = core.RTL
	default:
		s.writeError(w, r, http.StatusBadRequest, "unknown model %q (want tl or rtl)", req.Model)
		return
	}
	id, err := s.requestIdent(r, sched.Interactive)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveCached(w, r, runKey(model, hash), hash, id, computeRun(sp, hash, model, wl))
}

// ident is one request's scheduling identity: the tenant whose fair
// queue the work joins and the priority class it dispatches under.
type ident struct {
	tenant string
	class  sched.Class
}

// requestIdent derives the request's scheduling identity from its
// headers: tenant from Options.TenantHeader (absent: the shared
// sched.DefaultTenant bucket; invalid: a 400-worthy error, so bad
// identifiers can't pollute metric label space), class from X-Class
// (absent: def — Interactive for /run and /compare, Batch for sweep
// and analyze paths). With fairness disabled everything collapses to
// one queue after validation.
func (s *Server) requestIdent(r *http.Request, def sched.Class) (ident, error) {
	tenant := r.Header.Get(s.tenantHeader)
	switch {
	case tenant == "":
		tenant = sched.DefaultTenant
	case !sched.ValidTenant(tenant):
		return ident{}, fmt.Errorf("%s %q is not a tenant identifier (1-%d characters of [A-Za-z0-9._-])",
			s.tenantHeader, tenant, sched.MaxTenantLen)
	}
	class := def
	if v := r.Header.Get(ClassHeader); v != "" {
		c, ok := sched.ParseClass(v)
		if !ok {
			return ident{}, fmt.Errorf("%s %q is not a scheduling class (want interactive or batch)", ClassHeader, v)
		}
		class = c
	}
	if s.fairnessOff {
		return ident{tenant: sched.DefaultTenant, class: sched.Interactive}, nil
	}
	return ident{tenant: tenant, class: class}, nil
}

// runKey is the cache key of a single-model run result.
func runKey(model core.Model, hash string) string {
	return "run:" + model.String() + ":" + hash
}

// errDeadline marks a simulation cut short by the server's request
// deadline; executeOnce's job wrapper turns it into a 504.
var errDeadline = errors.New("request deadline exceeded")

// interruptFrom adapts a job context into the simulator's Interrupt
// hook. A context that can never be cancelled returns nil, selecting
// the single-shot uninterruptible run path — byte-for-byte the
// pre-deadline behavior.
func interruptFrom(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// computeRun returns the deterministic body builder for one
// single-model run; it executes on a pool worker, under the job's
// deadline context.
func computeRun(sp spec.Spec, hash string, model core.Model, wl core.Workload) func(context.Context, *Timing) ([]byte, error) {
	return func(ctx context.Context, tm *Timing) ([]byte, error) {
		start := time.Now()
		res := core.Run(wl, model, core.Options{Interrupt: interruptFrom(ctx)})
		tm.Simulate = time.Since(start)
		if res.Interrupted {
			return nil, errDeadline
		}
		start = time.Now()
		body, err := json.Marshal(RunResponse{
			Name:       sp.Name,
			Hash:       hash,
			Model:      model.String(),
			Cycles:     uint64(res.Cycles),
			Completed:  res.Completed,
			Violations: res.Violations,
			Stats:      res.Stats,
		})
		tm.Encode = time.Since(start)
		return body, err
	}
}

// handleCompare serves POST /compare: both models, one accuracy row.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	_, sp, hash, wl, err := s.decodeRequest(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.requestIdent(r, sched.Interactive)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveCached(w, r, compareKey(hash), hash, id, computeCompare(sp, hash, wl))
}

// compareKey is the cache key of a two-model accuracy row.
func compareKey(hash string) string { return "compare:" + hash }

// computeCompare returns the deterministic body builder for one
// accuracy row; it executes on a pool worker, under the job's
// deadline context.
func computeCompare(sp spec.Spec, hash string, wl core.Workload) func(context.Context, *Timing) ([]byte, error) {
	return func(ctx context.Context, tm *Timing) ([]byte, error) {
		start := time.Now()
		row, interrupted := core.CompareInterruptible(wl, interruptFrom(ctx))
		tm.Simulate = time.Since(start)
		if interrupted {
			return nil, errDeadline
		}
		start = time.Now()
		body, err := json.Marshal(CompareResponse{
			Name:      sp.Name,
			Hash:      hash,
			RTLCycles: uint64(row.RTLCycles),
			TLMCycles: uint64(row.TLMCycles),
			DiffPct:   row.ErrPct,
			Completed: row.Completed,
		})
		tm.Encode = time.Since(start)
		return body, err
	}
}

// lookup probes the two cache tiers for key: the in-memory LRU, then
// the disk store. A disk hit is promoted into the LRU so the next
// probe stays off the filesystem. Either tier's hit is the
// byte-identical body of the original computation.
func (s *Server) lookup(key string) ([]byte, bool) {
	if body, ok := s.lookupMemory(key); ok {
		return body, true
	}
	if s.disk != nil {
		if body, ok := s.disk.Get(key); ok {
			s.cache.put(key, body)
			s.hits.Add(1)
			s.storeHits.Add(1)
			return body, true
		}
	}
	return nil, false
}

// lookupMemory probes only the in-memory tier. The sweep first pass
// and executeOnce's re-checks use it: disk-held bodies resolve
// through executeOnce's own disk probes, so the store's hit/miss
// counters stay one-probe-per-request. A memory hit still refreshes
// the disk entry's LRU recency — without the Touch, results served
// from memory look cold on disk and are the first evicted, exactly
// the entries a restart most wants back.
func (s *Server) lookupMemory(key string) ([]byte, bool) {
	if body, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		if s.disk != nil {
			s.disk.Touch(key)
		}
		return body, true
	}
	return nil, false
}

// persist writes a computed body into both cache tiers.
func (s *Server) persist(key string, body []byte) {
	s.cache.put(key, body)
	if s.disk != nil {
		// Best-effort: a full disk degrades the store to memory-only
		// behavior rather than failing the request that computed the
		// result.
		_ = s.disk.Put(key, body)
	}
}

// executeOnce resolves one cache key to a response: served from a
// cache tier ("hit"), attached to an in-flight duplicate
// ("coalesced"), or computed as a new job on the weighted-fair
// scheduler under id's tenant and class ("miss") — in that order.
// compute runs on a worker and must be deterministic in its output
// bytes; those exact bytes are cached, persisted and replayed
// (scheduling order can never touch them). A saturated class queue
// yields a 503 status (with disposition "" for the request that hit
// the cap, "coalesced" for duplicates that had attached to it); the
// caller chooses whether that is terminal (HTTP request path) or
// retryable (sweep rows, which pass recheck=true on retries so the
// disk tier isn't hit/miss-counted once per backoff round — the
// silent flight-leader re-probe below still rescues a disk-resident
// result). Coalescing wins over classing: a duplicate rides the
// leader's queue position whatever class either request declared,
// because attaching to in-flight work is always cheaper than a fairer
// queue slot. A non-nil error means ctx ended before the result was
// ready — the job itself still completes and fills the cache.
func (s *Server) executeOnce(ctx context.Context, key string, id ident, compute func(context.Context, *Timing) ([]byte, error), recheck bool) (status int, body []byte, disposition string, timing *Timing, err error) {
	probe := s.lookup
	if recheck {
		probe = s.lookupMemory
	}
	if body, ok := probe(key); ok {
		return http.StatusOK, body, "hit", nil, nil
	}

	s.mu.Lock()
	// Re-check the memory tier under the lock: the in-flight job for
	// this key may have filled the cache and retired its flight
	// between the lock-free probe above and here — without this, that
	// race starts a duplicate simulation. Memory only: no disk IO
	// ever runs under s.mu, which serializes flight creation across
	// ALL keys.
	if body, ok := s.lookupMemory(key); ok {
		s.mu.Unlock()
		return http.StatusOK, body, "hit", nil, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-f.done:
			if f.terminal {
				return f.status, f.body, dispositionClosed, nil, nil
			}
			return f.status, f.body, "coalesced", f.timing, nil
		case <-ctx.Done():
			return 0, nil, "", nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	// This request now leads the flight for key, so it can re-probe
	// the disk tier outside every lock: if a tiny LRU evicted what a
	// retired flight persisted (or a restart left the result on disk
	// only), the stored body is rescued here instead of re-simulated,
	// and any duplicates that coalesced meanwhile read it from the
	// flight. Silent probe (Peek): this request's store miss was
	// already counted by the primary lookup.
	if s.disk != nil {
		if body, ok := s.disk.Peek(key); ok {
			s.cache.put(key, body)
			s.hits.Add(1)
			s.storeHits.Add(1)
			f.status = http.StatusOK
			f.body = body
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
			close(f.done)
			return http.StatusOK, body, "hit", nil, nil
		}
	}

	// The deadline clock starts at submission, not at execution: the
	// queue wait is part of what the client experiences, so a job that
	// waited out most of its budget in the queue gets only the
	// remainder to simulate.
	var deadline time.Time
	if s.requestTimeout > 0 {
		deadline = time.Now().Add(s.requestTimeout)
	}
	submitted := time.Now()
	_, serr := s.sched.Submit(id.tenant, id.class, func() {
		// Queue wait is measured from submission to worker pickup —
		// the stage a saturated pool inflates; it plus simulate and
		// encode is the X-Timing breakdown the leader's response (and
		// every coalesced waiter's) carries.
		tm := &Timing{Queue: time.Since(submitted)}
		f.timing = tm
		defer func() {
			if p := recover(); p != nil {
				f.status = http.StatusInternalServerError
				f.body, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("simulation failed: %v", p)})
			}
			if f.status == http.StatusOK {
				s.persist(key, f.body)
			}
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
			close(f.done)
		}()
		// The job context carries ONLY the server's own deadline —
		// never the client's: a vanished client must not cancel the
		// simulation that is about to fill the cache for the next one.
		jobCtx := context.Background()
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			jobCtx, cancel = context.WithDeadline(jobCtx, deadline)
			defer cancel()
		}
		s.jobs.Add(1)
		body, err := compute(jobCtx, tm)
		switch {
		case errors.Is(err, errDeadline):
			s.timeouts.Add(1)
			// Interrupted, not failed: the worker is already free (the
			// simulator returned at a cycle-slice boundary). 504, never
			// cached or persisted — a retry under a lighter load may
			// finish within budget.
			f.status = http.StatusGatewayTimeout
			f.body, _ = json.Marshal(errorResponse{Error: fmt.Sprintf(
				"simulation aborted: exceeded the server's %v request deadline", s.requestTimeout)})
		case err != nil:
			panic(err)
		default:
			f.status = http.StatusOK
			f.body = body
		}
	})
	if serr != nil {
		// Fill the flight before closing it: requests that already
		// coalesced onto this key must read a real 503, not a
		// zero-valued response. A saturated class queue is transient
		// (disposition "", the retryable signal); a closed scheduler
		// is terminal (disposition dispositionClosed) so retry loops
		// don't spin against a server that is shutting down.
		disposition := ""
		msg := "run queue saturated; retry"
		if !errors.Is(serr, sched.ErrSaturated) {
			disposition = dispositionClosed
			msg = "service shutting down"
			f.terminal = true
		}
		f.status = http.StatusServiceUnavailable
		f.body, _ = json.Marshal(errorResponse{Error: msg})
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		// Rejected counts 503 *responses*, so it is incremented by
		// serveCached, not here: a sweep row retrying this same
		// saturation dozens of times sends no 503 and must not move
		// the backpressure metric.
		return f.status, f.body, disposition, nil, nil
	}
	select {
	case <-f.done:
		return f.status, f.body, "miss", f.timing, nil
	case <-ctx.Done():
		return 0, nil, "", nil, ctx.Err()
	}
}

// serveCached is the HTTP face of executeOnce: the resolved response
// is written with its cache-disposition header, a client that gave up
// gets nothing (the job still completes and fills the cache). A
// computed response (miss or coalesced — anything that waited on the
// simulation) carries the X-Timing stage breakdown; cache hits have
// no stages to report.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key, hash string, id ident, compute func(context.Context, *Timing) ([]byte, error)) {
	status, body, disposition, timing, err := s.executeOnce(r.Context(), key, id, compute, false)
	if err != nil {
		return
	}
	if timing != nil {
		w.Header().Set(TimingHeader, timing.Header())
	}
	if status == http.StatusServiceUnavailable {
		if disposition == "" {
			// This request led the refused flight and is about to
			// receive a saturation 503 — the one event Rejected counts
			// (coalesced waiters and shutdown 503s don't).
			s.rejected.Add(1)
		}
		if disposition == dispositionClosed {
			// Tell machine clients (the shard router's retry loops)
			// that this 503 is terminal — the scheduler is shutting
			// down, not busy — so they fail over instead of backing
			// off against a server that will never recover.
			w.Header().Set("X-Terminal", "1")
		}
		// Backpressure responses carry no cache disposition.
		disposition = ""
	}
	if status != http.StatusOK {
		// Flight error bodies are shared between coalesced waiters;
		// each response gets its own request ID stamped at write time.
		body = injectRequestID(body, obs.RequestIDFrom(r.Context()))
	}
	s.writeBodyClass(w, status, body, disposition, hash, id.class)
}

// injectRequestID stamps rid into an errorResponse body. Unparseable
// bodies (or an empty rid) pass through unchanged.
func injectRequestID(body []byte, rid string) []byte {
	if rid == "" {
		return body
	}
	var e errorResponse
	if json.Unmarshal(body, &e) != nil || e.Error == "" {
		return body
	}
	e.RequestID = rid
	out, err := json.Marshal(e)
	if err != nil {
		return body
	}
	return out
}

// handleScenarios serves GET /scenarios: the built-in spec library,
// prebuilt in New.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeBody(w, http.StatusOK, s.scenariosBody, "", "")
}

// Health is the body of GET /healthz: liveness, pool occupancy, load
// counters and (with a disk store) store occupancy. The shard router
// aggregates one of these per backend, so the schema is the wire
// contract between a worker process and its frontend.
type Health struct {
	OK  bool `json:"ok"`
	Pid int  `json:"pid"`
	// Workers/QueueCap are the scheduler's static shape (QueueCap is
	// per class); Queued/InFlight its instantaneous load summed over
	// every class and tenant.
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_capacity"`
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// RetryAfter is the WORST per-class backoff (seconds) a 503 would
	// carry right now — the conservative one-number pacing signal for
	// frontends; per-class honesty lives in Sched.
	RetryAfter int `json:"retry_after"`
	// Sched is the weighted-fair scheduler's per-class and active
	// per-tenant queue state, keyed with the metrics label vocabulary
	// (class, tenant) — per-class queue depths, in-flight counts,
	// admission rejections and honest per-class retry_after.
	Sched        *sched.Snapshot `json:"sched,omitempty"`
	CacheEntries int             `json:"cache_entries"`
	Store        *store.Stats    `json:"store,omitempty"`
	// Since is when this process started serving and UptimeSeconds its
	// age — monotonic per process life. A respawned worker restarts
	// both at zero alongside its counters, which is how a frontend
	// aggregating Counters across shards tells "the worker restarted"
	// (since jumped forward) from "the counters went backwards".
	Since         time.Time `json:"since"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// GoVersion is the toolchain that built this worker (the full
	// build identity lives at GET /version).
	GoVersion string `json:"go_version,omitempty"`
	Counters
}

// HealthSnapshot returns the current Health body.
func (s *Server) HealthSnapshot() Health {
	var diskStats *store.Stats
	if s.disk != nil {
		st := s.disk.StatsSnapshot()
		diskStats = &st
	}
	schedSnap := s.sched.Snapshot()
	return Health{
		OK: true, Pid: os.Getpid(),
		Workers: s.workers, QueueCap: s.queue,
		Queued: s.sched.Queued(), InFlight: s.sched.InFlight(),
		RetryAfter:    s.retryAfterSeconds(),
		Sched:         &schedSnap,
		CacheEntries:  s.cache.len(),
		Store:         diskStats,
		Since:         s.since,
		UptimeSeconds: time.Since(s.since).Seconds(),
		GoVersion:     ReadVersion(s.since).GoVersion,
		Counters:      s.CountersSnapshot(),
	}
}

// handleHealthz serves GET /healthz: liveness plus load counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	body, err := json.Marshal(s.HealthSnapshot())
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeBody(w, http.StatusOK, body, "", "")
}

// retryAfterSeconds is the worst per-class backoff — what healthz
// advertises at the top level so frontends pacing on one number stay
// conservative. Per-class honesty lives in the sched healthz block
// and on the 503s themselves: a class's rejection carries ITS
// class's backoff (sched.RetryAfterSeconds), derived from its own
// backlog and weighted worker share, never another class's backlog.
func (s *Server) retryAfterSeconds() int {
	worst := 1
	for _, c := range sched.Classes() {
		if secs := s.sched.RetryAfterSeconds(c); secs > worst {
			worst = secs
		}
	}
	return worst
}

// writeBody sends a JSON body with the cache-disposition and
// spec-hash headers; 503s here carry the interactive class's backoff
// (non-execution endpoints — health, scenarios, manifests — never
// produce saturation 503s, so the distinction is moot for them).
func (s *Server) writeBody(w http.ResponseWriter, status int, body []byte, cache, hash string) {
	s.writeBodyClass(w, status, body, cache, hash, sched.Interactive)
}

// writeBodyClass is writeBody for execution endpoints, which know the
// request's scheduling class: a backpressure response (503) carries
// the Retry-After of THAT class — the honest per-class backoff,
// whether the 503 was served directly or through a coalesced flight.
func (s *Server) writeBodyClass(w http.ResponseWriter, status int, body []byte, cache, hash string, class sched.Class) {
	w.Header().Set("Content-Type", "application/json")
	if cache != "" {
		w.Header().Set("X-Cache", cache)
	}
	if hash != "" {
		w.Header().Set("X-Spec-Hash", hash)
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfterSeconds(class)))
	}
	w.WriteHeader(status)
	w.Write(body)
}

// writeError sends a JSON error body stamped with the request's ID,
// so a client-side error report names the exact request in the logs.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	body, _ := json.Marshal(errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: obs.RequestIDFrom(r.Context()),
	})
	s.writeBody(w, status, body, "", "")
}

// lru is a mutex-guarded LRU byte cache: spec hash key -> response
// body. Bounded by entry count; simulation responses are small and
// uniform, so entry count is an adequate proxy for bytes.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
}

// lruEntry is one cached response.
type lruEntry struct {
	key  string
	body []byte
}

// newLRU returns an empty cache bounded to cap entries.
func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached body and refreshes its recency.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put stores a body, evicting the least-recently-used entry at cap.
func (c *lru) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// keys returns every cached key, most recently used first — the
// memory tier's contribution to the /results?prefix= enumeration.
func (c *lru) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}

package ddr

import (
	"fmt"

	"repro/internal/sim"
)

// BankState is the externally visible state of one bank FSM.
type BankState uint8

const (
	// BankIdle: no row open, no operation in flight.
	BankIdle BankState = iota
	// BankActivating: a row activation is in progress (until readyAt).
	BankActivating
	// BankActive: a row is open and the bank can accept column commands.
	BankActive
	// BankPrecharging: a precharge is in progress (until readyAt).
	BankPrecharging
)

// String implements fmt.Stringer.
func (s BankState) String() string {
	switch s {
	case BankIdle:
		return "IDLE"
	case BankActivating:
		return "ACTIVATING"
	case BankActive:
		return "ACTIVE"
	case BankPrecharging:
		return "PRECHARGING"
	}
	return fmt.Sprintf("BankState(%d)", uint8(s))
}

// PagePolicy selects the controller's row-management strategy.
type PagePolicy uint8

const (
	// OpenPage keeps the row open after an access, betting on locality
	// (the AHB+ default; bank interleaving is built around it).
	OpenPage PagePolicy = iota
	// ClosedPage auto-precharges after every access, betting against
	// locality: row-thrashing traffic sees misses instead of the more
	// expensive conflicts.
	ClosedPage
)

// String implements fmt.Stringer.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosedPage:
		return "closed-page"
	}
	return fmt.Sprintf("PagePolicy(%d)", uint8(p))
}

// AccessKind classifies an access by the page state it found.
type AccessKind uint8

const (
	// AccessHit: the target row was already open (column command only).
	AccessHit AccessKind = iota
	// AccessMiss: the bank was closed (activate + column).
	AccessMiss
	// AccessConflict: a different row was open (precharge + activate +
	// column), the most expensive case.
	AccessConflict
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case AccessHit:
		return "hit"
	case AccessMiss:
		return "miss"
	case AccessConflict:
		return "conflict"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}

// bank holds the timestamp state of one bank FSM. All behaviour is
// derived from these timestamps; there is no per-cycle ticking.
type bank struct {
	open    bool
	row     uint32
	readyAt sim.Cycle // activation/precharge completes (state transient until then)
	// rasReadyAt is the earliest legal precharge start (tRAS from the
	// last activate, extended by tWR after writes).
	rasReadyAt sim.Cycle
	// rcReadyAt is the earliest legal next activate (tRC from the last
	// activate).
	rcReadyAt sim.Cycle
}

// state reports the FSM state of the bank as of cycle now.
func (b *bank) state(now sim.Cycle) BankState {
	if b.open {
		if now < b.readyAt {
			return BankActivating
		}
		return BankActive
	}
	if now < b.readyAt {
		return BankPrecharging
	}
	return BankIdle
}

// AccessResult describes the timing of one scheduled burst access.
type AccessResult struct {
	// Kind classifies the page state the access found.
	Kind AccessKind
	// IssueAt is the cycle the engine began working on the access
	// (commands may start then; data comes later).
	IssueAt sim.Cycle
	// FirstData is the cycle of the first data beat on the memory bus.
	FirstData sim.Cycle
	// LastData is the cycle of the final data beat.
	LastData sim.Cycle
	// RefreshStall is the number of cycles the access waited behind an
	// intervening auto-refresh (0 almost always).
	RefreshStall sim.Cycle
}

// Latency returns the request-to-first-data latency.
func (r AccessResult) Latency(reqAt sim.Cycle) sim.Cycle { return r.FirstData.SubFloor(reqAt) }

// Stats aggregates engine activity for the profiler.
type Stats struct {
	Reads, Writes  uint64
	RowHits        uint64
	RowMisses      uint64
	RowConflicts   uint64
	Activates      uint64
	Precharges     uint64
	Refreshes      uint64
	HintActivates  uint64
	HintPrecharges uint64
	DataBeats      uint64
	DataBusBusy    sim.Cycle // cycles the memory data bus carried beats
}

// HitRate returns the fraction of accesses that were row hits.
func (s Stats) HitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Engine is the DDR device + controller timing model. One instance
// belongs to one simulated system (the RTL model and the TLM each own
// their own engine configured identically).
//
// Command priority discipline (paper §3.3: "column, row, and pre-charge
// accesses have different priorities by scheduling scheme"): a demand
// access always schedules its column command at the earliest legal
// cycle; row (activate) commands are scheduled only as required by the
// column command; precharges are lowest priority — they happen lazily on
// conflict or eagerly only via interleaving hints when a bank is
// otherwise quiet.
type Engine struct {
	T   Timing
	Map AddrMap
	// Policy is the row-management strategy (default OpenPage). Set it
	// before the first access.
	Policy PagePolicy

	banks []bank
	// dataFreeAt is the first cycle the shared data bus is free.
	dataFreeAt sim.Cycle
	// actFreeAt is the earliest next activate on any bank (tRRD).
	actFreeAt sim.Cycle
	// nextRefresh is the cycle the next auto-refresh becomes due.
	nextRefresh sim.Cycle
	// refreshUntil is the end of an in-progress/completed refresh window.
	refreshUntil sim.Cycle

	stats Stats
}

// NewEngine returns an engine with all banks idle at cycle 0. It panics
// on invalid timing, which is static configuration.
func NewEngine(t Timing, m AddrMap) *Engine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{T: t, Map: m, banks: make([]bank, m.Banks())}
	if t.TREFI > 0 {
		e.nextRefresh = t.TREFI
	} else {
		e.nextRefresh = sim.CycleMax
	}
	return e
}

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// BankState reports the FSM state of bank b at cycle now.
func (e *Engine) BankState(b int, now sim.Cycle) BankState {
	return e.banks[b].state(now)
}

// OpenRow returns the open row of bank b and whether one is open.
func (e *Engine) OpenRow(b int) (uint32, bool) {
	return e.banks[b].row, e.banks[b].open
}

// Banks returns the number of banks.
func (e *Engine) Banks() int { return len(e.banks) }

// refreshDue runs any refreshes due by cycle t and returns the cycle at
// which normal operation may resume (>= t if a refresh blocked it).
// Refresh closes every bank. The rule is purely timestamp-based so the
// RTL model and the TLM — which call in at slightly different cycles —
// apply identical refresh behaviour.
func (e *Engine) refreshDue(t sim.Cycle) sim.Cycle {
	for e.nextRefresh <= t {
		// Refresh may begin once all banks are quiet and the data bus
		// has drained; it must not begin before it is due.
		start := e.nextRefresh
		for i := range e.banks {
			b := &e.banks[i]
			if b.open {
				// Bank must be precharged first: legal precharge start,
				// then tRP.
				pre := sim.MaxCycle(start, sim.MaxCycle(b.readyAt, b.rasReadyAt))
				start = sim.MaxCycle(start, pre+e.T.TRP)
				b.open = false
				b.readyAt = pre + e.T.TRP
				e.stats.Precharges++
			} else {
				start = sim.MaxCycle(start, b.readyAt)
			}
		}
		start = sim.MaxCycle(start, e.dataFreeAt)
		end := start + e.T.TRFC
		for i := range e.banks {
			e.banks[i].readyAt = end
			e.banks[i].rcReadyAt = end
			e.banks[i].rasReadyAt = end
		}
		e.refreshUntil = end
		e.stats.Refreshes++
		e.nextRefresh += e.T.TREFI
	}
	if t < e.refreshUntil {
		return e.refreshUntil
	}
	return t
}

// planAccess computes the timing of an access starting no earlier than
// now without mutating engine state, returning the plan needed to apply
// it. beats is the AHB burst length; each beat occupies the data bus
// for one cycle.
func (e *Engine) planAccess(now sim.Cycle, addr uint32, write bool, beats int) (AccessResult, int, uint32) {
	bankIdx, row, _ := e.Map.Decode(addr)
	b := e.banks[bankIdx]
	t := now

	var kind AccessKind
	var colReady sim.Cycle // earliest cycle the column command can issue
	switch {
	case b.open && b.row == row:
		kind = AccessHit
		colReady = sim.MaxCycle(t, b.readyAt)
	case b.open:
		kind = AccessConflict
		pre := sim.MaxCycle(t, sim.MaxCycle(b.readyAt, b.rasReadyAt))
		actStart := sim.MaxCycle(pre+e.T.TRP, sim.MaxCycle(b.rcReadyAt, e.actFreeAt))
		colReady = actStart + e.T.TRCD
	default:
		kind = AccessMiss
		actStart := sim.MaxCycle(t, sim.MaxCycle(b.readyAt, sim.MaxCycle(b.rcReadyAt, e.actFreeAt)))
		colReady = actStart + e.T.TRCD
	}

	lat := e.T.TCL
	if write {
		lat = e.T.TWL
	}
	firstData := colReady + lat
	if firstData < e.dataFreeAt {
		firstData = e.dataFreeAt
	}
	lastData := firstData + sim.Cycle(beats-1)

	return AccessResult{
		Kind:      kind,
		IssueAt:   t,
		FirstData: firstData,
		LastData:  lastData,
	}, bankIdx, row
}

// Access schedules a burst of beats beats at addr starting no earlier
// than now and commits the resulting bank/bus state. This is the demand
// path used by both models when a granted transaction reaches the
// memory controller.
func (e *Engine) Access(now sim.Cycle, addr uint32, write bool, beats int) AccessResult {
	if beats <= 0 {
		panic("ddr: access with no beats")
	}
	t := e.refreshDue(now)
	res, bankIdx, row := e.planAccess(t, addr, write, beats)
	res.RefreshStall = t.SubFloor(now)
	res.IssueAt = now

	b := &e.banks[bankIdx]
	switch res.Kind {
	case AccessHit:
		e.stats.RowHits++
	case AccessConflict:
		e.stats.RowConflicts++
		e.stats.Precharges++
		e.stats.Activates++
		actStart := res.FirstData - e.colLatency(write) - e.T.TRCD
		b.rcReadyAt = actStart + e.T.TRC
		b.rasReadyAt = actStart + e.T.TRAS
		e.actFreeAt = actStart + e.T.TRRD
	case AccessMiss:
		e.stats.RowMisses++
		e.stats.Activates++
		actStart := res.FirstData - e.colLatency(write) - e.T.TRCD
		b.rcReadyAt = actStart + e.T.TRC
		b.rasReadyAt = actStart + e.T.TRAS
		e.actFreeAt = actStart + e.T.TRRD
	}
	b.open = true
	b.row = row
	colIssue := res.FirstData - e.colLatency(write)
	if colIssue > b.readyAt {
		b.readyAt = colIssue
	}
	if write {
		// Write recovery extends the earliest precharge.
		wr := res.LastData + e.T.TWR
		if wr > b.rasReadyAt {
			b.rasReadyAt = wr
		}
		e.stats.Writes++
	} else {
		e.stats.Reads++
	}
	e.dataFreeAt = res.LastData + 1
	e.stats.DataBeats += uint64(beats)
	e.stats.DataBusBusy += sim.Cycle(beats)
	if e.Policy == ClosedPage {
		// Auto-precharge: close the row as soon as legal after the
		// burst, so the next access finds the bank idle.
		pre := sim.MaxCycle(res.LastData+1, b.rasReadyAt)
		b.open = false
		if pre+e.T.TRP > b.readyAt {
			b.readyAt = pre + e.T.TRP
		}
		e.stats.Precharges++
	}
	return res
}

func (e *Engine) colLatency(write bool) sim.Cycle {
	if write {
		return e.T.TWL
	}
	return e.T.TCL
}

// Peek computes the timing an access would get at cycle now without
// committing any state. The arbitration bank-affinity filter uses it to
// rank candidate requests.
func (e *Engine) Peek(now sim.Cycle, addr uint32, write bool, beats int) AccessResult {
	// Refresh bookkeeping must not be mutated by a peek: approximate by
	// clamping to the known refresh window (pending refreshes that have
	// not been materialized yet are ignored, which is acceptable for a
	// heuristic ranking).
	t := now
	if t < e.refreshUntil {
		t = e.refreshUntil
	}
	res, _, _ := e.planAccess(t, addr, write, beats)
	res.IssueAt = now
	return res
}

// Tick advances the controller's autonomous work (the refresh timer)
// to cycle now. The cycle-stepped pin-accurate model calls this every
// bus cycle, so refresh windows materialize eagerly there; the TLM
// relies on the lazy materialization inside Access/Hint/Permit. Both
// orders produce identical refresh windows because the start rule is
// pure timestamp arithmetic over state that cannot change between the
// due time and the first later engine call.
func (e *Engine) Tick(now sim.Cycle) {
	if e.T.TREFI != 0 {
		e.refreshDue(now)
	}
}

// NextRefresh returns the cycle the next auto-refresh becomes due, or
// CycleMax when refresh is disabled. Cycle-stepped observers use it to
// know how far ahead no autonomous controller activity can occur.
func (e *Engine) NextRefresh() sim.Cycle {
	if e.T.TREFI == 0 {
		return sim.CycleMax
	}
	return e.nextRefresh
}

// RefreshClear returns the earliest cycle >= now at which the
// controller can accept new work: now itself, or the end of the refresh
// window in progress at now. Refreshes due by now are materialized,
// exactly as a Permit probe at now would.
func (e *Engine) RefreshClear(now sim.Cycle) sim.Cycle {
	if e.T.TREFI == 0 {
		return now
	}
	return e.refreshDue(now)
}

// Hint is the bank-interleaving fast path fed by the BI protocol: the
// arbiter announces the likely next transaction while the current one is
// still transferring, and the engine prepares the target bank — eagerly
// activating an idle bank or precharging a conflicting row — so the
// demand access later finds the row open. A hint only acts when it
// cannot delay in-flight work: the target bank must be quiet and, for a
// precharge, past its tRAS window.
func (e *Engine) Hint(now sim.Cycle, addr uint32, write bool) {
	t := e.refreshDue(now)
	if t != now {
		return // refresh in progress; do nothing
	}
	bankIdx, row, _ := e.Map.Decode(addr)
	b := &e.banks[bankIdx]
	switch b.state(now) {
	case BankIdle:
		if sim.MaxCycle(b.rcReadyAt, e.actFreeAt) > now {
			return
		}
		b.open = true
		b.row = row
		b.readyAt = now + e.T.TRCD
		b.rcReadyAt = now + e.T.TRC
		b.rasReadyAt = now + e.T.TRAS
		e.actFreeAt = now + e.T.TRRD
		e.stats.Activates++
		e.stats.HintActivates++
	case BankActive:
		if b.row == row {
			return // already the right row
		}
		if b.rasReadyAt > now {
			return
		}
		b.open = false
		b.readyAt = now + e.T.TRP
		e.stats.Precharges++
		e.stats.HintPrecharges++
	}
}

// Permit reports whether the controller can accept a new access to the
// bank containing addr at cycle now. It is the access-permission signal
// the DDRC sends back over BI: false only while a refresh window blocks
// the device. Refreshes that have become due are materialized here —
// the controller performs them autonomously, whether or not any access
// arrives — so a permission veto always clears once tRFC elapses.
func (e *Engine) Permit(now sim.Cycle, addr uint32) bool {
	if e.T.TREFI == 0 {
		return true
	}
	return e.refreshDue(now) <= now
}

// IdleOrOpen reports for the bank containing addr whether the bank is
// idle (cheap to open) or already open at the target row (free). The
// bank-affinity arbitration filter consumes this.
func (e *Engine) IdleOrOpen(now sim.Cycle, addr uint32) (idle, rowOpen bool) {
	bankIdx, row, _ := e.Map.Decode(addr)
	b := &e.banks[bankIdx]
	switch b.state(now) {
	case BankIdle:
		return true, false
	case BankActive:
		return false, b.row == row
	}
	return false, false
}

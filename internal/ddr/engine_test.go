package ddr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testEngine() *Engine {
	return NewEngine(DDR266().NoRefresh(), DefaultAddrMap())
}

func TestAddrMapRoundTrip(t *testing.T) {
	m := DefaultAddrMap()
	f := func(bankRaw uint8, rowRaw, colRaw uint32) bool {
		bank := int(bankRaw) % m.Banks()
		row := rowRaw & ((1 << m.RowBits) - 1)
		col := colRaw & ((1 << m.ColBits) - 1)
		b2, r2, c2 := m.Decode(m.Encode(bank, row, col))
		return b2 == bank && r2 == row && c2 == col
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrMapSequentialCrossesBanks(t *testing.T) {
	m := DefaultAddrMap()
	rowBytes := m.RowBytes()
	b0, _, _ := m.Decode(0)
	b1, _, _ := m.Decode(rowBytes) // one row further
	if b0 == b1 {
		t.Fatalf("walking past a row should land in the next bank (got bank %d twice)", b0)
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR266().Validate(); err != nil {
		t.Fatalf("DDR266 invalid: %v", err)
	}
	if err := DDR333().Validate(); err != nil {
		t.Fatalf("DDR333 invalid: %v", err)
	}
	bad := DDR266()
	bad.TRC = 1
	if bad.Validate() == nil {
		t.Fatal("tRC < tRAS+tRP must be rejected")
	}
	bad = DDR266()
	bad.TRFC = 0
	if bad.Validate() == nil {
		t.Fatal("refresh without tRFC must be rejected")
	}
	bad = DDR266()
	bad.TRCD = 0
	if bad.Validate() == nil {
		t.Fatal("zero tRCD must be rejected")
	}
}

func TestFirstAccessIsMiss(t *testing.T) {
	e := testEngine()
	res := e.Access(0, 0x1000, false, 4)
	if res.Kind != AccessMiss {
		t.Fatalf("first access kind = %v, want miss", res.Kind)
	}
	// Closed bank: activate at 0, column at tRCD, data at tRCD+tCL.
	want := e.T.TRCD + e.T.TCL
	if res.FirstData != want {
		t.Fatalf("FirstData = %v, want %v", res.FirstData, want)
	}
	if res.LastData != want+3 {
		t.Fatalf("LastData = %v, want %v", res.LastData, want+3)
	}
}

func TestRowHitIsFasterThanMissIsFasterThanConflict(t *testing.T) {
	m := DefaultAddrMap()
	base := m.Encode(1, 10, 0)

	// Hit: open the row, then access it again.
	e1 := testEngine()
	e1.Access(0, base, false, 1)
	hit := e1.Access(100, base+4, false, 1)
	if hit.Kind != AccessHit {
		t.Fatalf("expected hit, got %v", hit.Kind)
	}

	// Miss: fresh bank.
	e2 := testEngine()
	e2.Access(0, base, false, 1)
	miss := e2.Access(100, m.Encode(2, 10, 0), false, 1)
	if miss.Kind != AccessMiss {
		t.Fatalf("expected miss, got %v", miss.Kind)
	}

	// Conflict: same bank, different row.
	e3 := testEngine()
	e3.Access(0, base, false, 1)
	conf := e3.Access(100, m.Encode(1, 11, 0), false, 1)
	if conf.Kind != AccessConflict {
		t.Fatalf("expected conflict, got %v", conf.Kind)
	}

	hl, ml, cl := hit.Latency(100), miss.Latency(100), conf.Latency(100)
	if !(hl < ml && ml < cl) {
		t.Fatalf("latency ordering violated: hit=%v miss=%v conflict=%v", hl, ml, cl)
	}
	// Closed-form expectations.
	if hl != e3.T.TCL {
		t.Fatalf("hit latency = %v, want tCL=%v", hl, e3.T.TCL)
	}
	if ml != e3.T.TRCD+e3.T.TCL {
		t.Fatalf("miss latency = %v, want tRCD+tCL=%v", ml, e3.T.TRCD+e3.T.TCL)
	}
	if cl != e3.T.TRP+e3.T.TRCD+e3.T.TCL {
		t.Fatalf("conflict latency = %v, want tRP+tRCD+tCL=%v", cl, e3.T.TRP+e3.T.TRCD+e3.T.TCL)
	}
}

func TestDataBusNeverOverlaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := testEngine()
		m := e.Map
		var lastEnd sim.Cycle
		now := sim.Cycle(0)
		for i := 0; i < 100; i++ {
			addr := m.Encode(rng.Intn(m.Banks()), uint32(rng.Intn(64)), uint32(rng.Intn(1<<m.ColBits))) &^ 3
			beats := 1 << rng.Intn(4) // 1,2,4,8
			res := e.Access(now, addr, rng.Intn(2) == 0, beats)
			if i > 0 && res.FirstData <= lastEnd {
				return false // overlap with previous burst
			}
			if res.LastData != res.FirstData+sim.Cycle(beats-1) {
				return false
			}
			lastEnd = res.LastData
			now += sim.Cycle(rng.Intn(10))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessTimeMonotone(t *testing.T) {
	// Data of a later request never precedes data of an earlier one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(DDR266(), DefaultAddrMap()) // refresh on
		var prev sim.Cycle
		now := sim.Cycle(0)
		for i := 0; i < 200; i++ {
			addr := uint32(rng.Intn(1<<20)) &^ 3
			res := e.Access(now, addr, rng.Intn(2) == 0, 1+rng.Intn(8))
			if res.FirstData < prev {
				return false
			}
			if res.FirstData < now {
				return false // data cannot precede the request
			}
			prev = res.FirstData
			now += sim.Cycle(rng.Intn(30))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTRCEnforcedBetweenActivates(t *testing.T) {
	e := testEngine()
	m := e.Map
	// Miss activates row 1 at cycle 0; conflicting access immediately
	// after must respect tRAS before precharge and tRC before the next
	// activate on the same bank.
	first := e.Access(0, m.Encode(0, 1, 0), false, 1)
	second := e.Access(first.LastData+1, m.Encode(0, 2, 0), false, 1)
	// Activate #2 start = firstData - tCL - tRCD must be >= tRC after
	// activate #1 (which started at 0).
	act2 := second.FirstData - e.T.TCL - e.T.TRCD
	if act2 < e.T.TRC {
		t.Fatalf("second activate at %v violates tRC=%v", act2, e.T.TRC)
	}
}

func TestWriteRecoveryDelaysConflict(t *testing.T) {
	m := DefaultAddrMap()
	tm := DDR266().NoRefresh()

	readEng := NewEngine(tm, m)
	rd := readEng.Access(0, m.Encode(0, 1, 0), false, 4)
	afterRead := readEng.Access(rd.LastData+1, m.Encode(0, 2, 0), false, 1)

	writeEng := NewEngine(tm, m)
	wr := writeEng.Access(0, m.Encode(0, 1, 0), true, 4)
	// Ask for the conflicting row immediately after the write data ends:
	// write recovery must push the precharge later than in the read case.
	afterWrite := writeEng.Access(wr.LastData+1, m.Encode(0, 2, 0), false, 1)

	gapRead := afterRead.FirstData - (rd.LastData + 1)
	gapWrite := afterWrite.FirstData - (wr.LastData + 1)
	if gapWrite <= gapRead {
		t.Fatalf("write recovery should lengthen conflict turnaround: write gap %v, read gap %v", gapWrite, gapRead)
	}
}

func TestHintActivationHidesRowMiss(t *testing.T) {
	m := DefaultAddrMap()
	addr := m.Encode(2, 5, 0)

	cold := testEngine()
	coldRes := cold.Access(100, addr, false, 4)

	hinted := testEngine()
	hinted.Hint(100-hinted.T.TRCD, addr, false) // announce tRCD early
	hintRes := hinted.Access(100, addr, false, 4)

	if hintRes.Kind != AccessHit {
		t.Fatalf("hinted access kind = %v, want hit", hintRes.Kind)
	}
	if hintRes.FirstData >= coldRes.FirstData {
		t.Fatalf("hint did not help: hinted %v vs cold %v", hintRes.FirstData, coldRes.FirstData)
	}
	st := hinted.Stats()
	if st.HintActivates != 1 {
		t.Fatalf("HintActivates = %d, want 1", st.HintActivates)
	}
}

func TestHintNeverHurtsDemandAccess(t *testing.T) {
	// Property: issuing a hint for address X never delays a demand
	// access to X relative to not hinting.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := DefaultAddrMap()
		warm := func(e *Engine) sim.Cycle {
			now := sim.Cycle(0)
			for i := 0; i < 10; i++ {
				addr := uint32(rng.Intn(1<<18)) &^ 3
				r := e.Access(now, addr, rng.Intn(2) == 0, 1+rng.Intn(4))
				now = r.LastData + sim.Cycle(rng.Intn(5))
			}
			return now
		}
		seedA := rng.Int63()
		target := m.Encode(rng.Intn(m.Banks()), uint32(rng.Intn(32)), 0)

		ePlain := NewEngine(DDR266().NoRefresh(), m)
		rng = rand.New(rand.NewSource(seedA))
		tPlain := warm(ePlain)
		plain := ePlain.Access(tPlain+10, target, false, 4)

		eHint := NewEngine(DDR266().NoRefresh(), m)
		rng = rand.New(rand.NewSource(seedA))
		tHint := warm(eHint)
		eHint.Hint(tHint+2, target, false)
		hinted := eHint.Access(tHint+10, target, false, 4)

		return hinted.FirstData <= plain.FirstData
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHintPrechargeOnConflict(t *testing.T) {
	m := DefaultAddrMap()
	e := testEngine()
	first := e.Access(0, m.Encode(0, 1, 0), false, 1)
	// Wait past tRAS so the hint precharge is legal, then hint the
	// conflicting row before demanding it.
	hintAt := sim.MaxCycle(first.LastData+1, e.T.TRAS)
	e.Hint(hintAt, m.Encode(0, 9, 0), false)
	if e.Stats().HintPrecharges != 1 {
		t.Fatalf("expected a hint precharge, stats=%+v", e.Stats())
	}
	res := e.Access(hintAt+e.T.TRP+e.T.TRCD, m.Encode(0, 9, 0), false, 1)
	if res.Kind == AccessConflict {
		t.Fatal("hint precharge should have removed the conflict")
	}
}

func TestRefreshBlocksAndRecovers(t *testing.T) {
	tm := DDR266()
	tm.TREFI = 100
	tm.TRFC = 9
	e := NewEngine(tm, DefaultAddrMap())
	// Before the refresh is due, permits are granted.
	if !e.Permit(10, 0) {
		t.Fatal("Permit should be true before refresh is due")
	}
	// An access right after the refresh becomes due pays the stall.
	res := e.Access(101, 0x40, false, 1)
	if res.RefreshStall == 0 {
		t.Fatalf("expected refresh stall, got %+v", res)
	}
	if e.Stats().Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1", e.Stats().Refreshes)
	}
	// Long quiet period: all due refreshes are made up.
	e.Access(1000, 0x40, false, 1)
	if got := e.Stats().Refreshes; got < 9 {
		t.Fatalf("Refreshes = %d, want >= 9 after 1000 cycles at tREFI=100", got)
	}
}

func TestPeekDoesNotMutate(t *testing.T) {
	e := testEngine()
	e.Access(0, 0x1000, false, 4)
	before := e.Stats()
	p1 := e.Peek(50, 0x2000, false, 4)
	p2 := e.Peek(50, 0x2000, false, 4)
	if p1 != p2 {
		t.Fatalf("repeated Peek changed result: %+v vs %+v", p1, p2)
	}
	if e.Stats() != before {
		t.Fatal("Peek mutated stats")
	}
	// Demand access matches the peek when nothing intervened.
	res := e.Access(50, 0x2000, false, 4)
	if res.FirstData != p1.FirstData {
		t.Fatalf("Access (%v) diverged from Peek (%v)", res.FirstData, p1.FirstData)
	}
}

func TestBankStateReporting(t *testing.T) {
	e := testEngine()
	if e.BankState(0, 0) != BankIdle {
		t.Fatal("bank should start idle")
	}
	res := e.Access(0, 0, false, 1)
	if e.BankState(0, res.LastData+1) != BankActive {
		t.Fatalf("bank should be active after access, got %v", e.BankState(0, res.LastData+1))
	}
	if e.BankState(0, 1) != BankActivating {
		t.Fatalf("bank should be activating mid-activation, got %v", e.BankState(0, 1))
	}
	row, open := e.OpenRow(0)
	if !open || row != 0 {
		t.Fatalf("OpenRow = (%d,%v)", row, open)
	}
}

func TestIdleOrOpen(t *testing.T) {
	m := DefaultAddrMap()
	e := testEngine()
	idle, open := e.IdleOrOpen(0, m.Encode(0, 1, 0))
	if !idle || open {
		t.Fatalf("fresh bank: idle=%v open=%v", idle, open)
	}
	res := e.Access(0, m.Encode(0, 1, 0), false, 1)
	idle, open = e.IdleOrOpen(res.LastData+1, m.Encode(0, 1, 4))
	if idle || !open {
		t.Fatalf("after access same row: idle=%v open=%v", idle, open)
	}
	idle, open = e.IdleOrOpen(res.LastData+1, m.Encode(0, 2, 0))
	if idle || open {
		t.Fatalf("after access other row: idle=%v open=%v", idle, open)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := testEngine()
	e.Access(0, 0x0, false, 4)   // miss
	e.Access(20, 0x10, false, 4) // hit (same row)
	e.Access(40, 0x0, true, 4)   // hit write
	st := e.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
	if st.RowHits != 2 || st.RowMisses != 1 {
		t.Fatalf("hits/misses = %d/%d", st.RowHits, st.RowMisses)
	}
	if st.DataBeats != 12 {
		t.Fatalf("DataBeats = %d, want 12", st.DataBeats)
	}
	if hr := st.HitRate(); hr < 0.6 || hr > 0.7 {
		t.Fatalf("HitRate = %f, want 2/3", hr)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

func TestAccessZeroBeatsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testEngine().Access(0, 0, false, 0)
}

func TestStringers(t *testing.T) {
	for _, s := range []BankState{BankIdle, BankActivating, BankActive, BankPrecharging, BankState(9)} {
		if s.String() == "" {
			t.Error("empty BankState string")
		}
	}
	for _, k := range []AccessKind{AccessHit, AccessMiss, AccessConflict, AccessKind(9)} {
		if k.String() == "" {
			t.Error("empty AccessKind string")
		}
	}
}

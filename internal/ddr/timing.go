// Package ddr models the AHB+ DDR memory controller (DDRC): per-bank
// state machines with RTL-accurate timing, a command scheduler in which
// column, row and precharge operations have different priority classes,
// and the bank-interleaving hint path fed by the BI side-band protocol.
//
// Following the paper ("we modeled the FSM as accurate as register
// transfer level. Instead, the data path is highly abstracted"), the
// engine keeps exact cycle timestamps for every timing constraint but
// never simulates the datapath per cycle: both the pin-accurate bus
// model and the TLM consult the same engine as a timing oracle, which is
// what makes the two models structurally consistent.
package ddr

import (
	"fmt"

	"repro/internal/sim"
)

// Timing holds the DDR timing constraints, all in bus clock cycles.
type Timing struct {
	// TRCD is the RAS-to-CAS delay: activate to column command.
	TRCD sim.Cycle
	// TRP is the precharge period: precharge to activate.
	TRP sim.Cycle
	// TCL is the CAS (read) latency: column read to first data.
	TCL sim.Cycle
	// TWL is the write latency: column write to first data.
	TWL sim.Cycle
	// TRAS is the minimum activate-to-precharge time for a bank.
	TRAS sim.Cycle
	// TRC is the minimum activate-to-activate time for the same bank.
	TRC sim.Cycle
	// TWR is the write recovery time: last write data to precharge.
	TWR sim.Cycle
	// TRRD is the minimum activate-to-activate time across banks.
	TRRD sim.Cycle
	// TREFI is the average refresh interval; 0 disables refresh.
	TREFI sim.Cycle
	// TRFC is the refresh cycle time (all banks blocked).
	TRFC sim.Cycle
}

// Validate reports configuration errors that would make the timing
// physically meaningless.
func (t Timing) Validate() error {
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("ddr: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TREFI != 0 && t.TRFC == 0 {
		return fmt.Errorf("ddr: refresh enabled (tREFI=%d) but tRFC is zero", t.TREFI)
	}
	if t.TRCD == 0 || t.TRP == 0 || t.TCL == 0 {
		return fmt.Errorf("ddr: core timings must be nonzero (tRCD=%d tRP=%d tCL=%d)", t.TRCD, t.TRP, t.TCL)
	}
	return nil
}

// DDR266 returns DDR-266 timing at a 133 MHz bus clock, the class of
// device the AHB+ platform of the paper targets.
func DDR266() Timing {
	return Timing{
		TRCD: 3, TRP: 3, TCL: 3, TWL: 1,
		TRAS: 6, TRC: 9, TWR: 2, TRRD: 2,
		TREFI: 1040, TRFC: 9,
	}
}

// DDR333 returns DDR-333 timing at a 166 MHz bus clock.
func DDR333() Timing {
	return Timing{
		TRCD: 3, TRP: 3, TCL: 3, TWL: 1,
		TRAS: 7, TRC: 10, TWR: 3, TRRD: 2,
		TREFI: 1300, TRFC: 11,
	}
}

// NoRefresh returns t with refresh disabled; used by tests that need
// closed-form latency expectations.
func (t Timing) NoRefresh() Timing {
	t.TREFI = 0
	t.TRFC = 0
	return t
}

// AddrMap describes how a flat AHB address decomposes into DDR
// coordinates. Bit layout from LSB: byte offset within a beat, column,
// bank, row. Placing bank bits directly above the column bits means a
// stream that walks past the end of a row lands in the next bank, which
// is what makes bank interleaving effective for streaming masters.
type AddrMap struct {
	// BeatBytesLog2 is log2 of the bus beat width in bytes.
	BeatBytesLog2 uint
	// ColBits is the number of column address bits.
	ColBits uint
	// BankBits is the number of bank address bits (banks = 1<<BankBits).
	BankBits uint
	// RowBits is the number of row address bits.
	RowBits uint
}

// DefaultAddrMap returns the platform default: 32-bit bus, 1 KiB rows
// (8 column bits), 4 banks.
func DefaultAddrMap() AddrMap {
	return AddrMap{BeatBytesLog2: 2, ColBits: 8, BankBits: 2, RowBits: 13}
}

// Banks returns the number of banks addressed by the map.
func (m AddrMap) Banks() int { return 1 << m.BankBits }

// RowBytes returns the number of bytes in one row of one bank.
func (m AddrMap) RowBytes() uint32 { return 1 << (m.ColBits + m.BeatBytesLog2) }

// Capacity returns the total addressable bytes.
func (m AddrMap) Capacity() uint64 {
	return uint64(1) << (m.BeatBytesLog2 + m.ColBits + m.BankBits + m.RowBits)
}

// Decode splits addr into bank, row and column coordinates.
func (m AddrMap) Decode(addr uint32) (bank int, row, col uint32) {
	a := addr >> m.BeatBytesLog2
	col = a & ((1 << m.ColBits) - 1)
	a >>= m.ColBits
	bank = int(a & ((1 << m.BankBits) - 1))
	a >>= m.BankBits
	row = a & ((1 << m.RowBits) - 1)
	return bank, row, col
}

// Encode is the inverse of Decode (byte offset zero).
func (m AddrMap) Encode(bank int, row, col uint32) uint32 {
	a := row
	a = a<<m.BankBits | uint32(bank)
	a = a<<m.ColBits | col
	return a << m.BeatBytesLog2
}

package ddr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestStatsBalanceProperty(t *testing.T) {
	// Accounting invariant: hits + misses + conflicts == reads + writes,
	// and beats accumulate exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(DDR266(), DefaultAddrMap())
		now := sim.Cycle(0)
		var beats uint64
		for i := 0; i < 100; i++ {
			n := 1 + rng.Intn(16)
			e.Access(now, uint32(rng.Intn(1<<22))&^3, rng.Intn(2) == 0, n)
			beats += uint64(n)
			now += sim.Cycle(rng.Intn(20))
		}
		st := e.Stats()
		if st.RowHits+st.RowMisses+st.RowConflicts != st.Reads+st.Writes {
			return false
		}
		if st.Reads+st.Writes != 100 {
			return false
		}
		return st.DataBeats == beats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDDR333FasterRefreshCadence(t *testing.T) {
	// DDR-333 at a faster clock has a longer tREFI in cycles; sanity
	// check the presets are distinct and self-consistent.
	a, b := DDR266(), DDR333()
	if a == b {
		t.Fatal("presets should differ")
	}
	for _, tm := range []Timing{a, b} {
		if tm.TRAS+tm.TRP > tm.TRC {
			t.Fatalf("preset violates tRC >= tRAS+tRP: %+v", tm)
		}
	}
}

func TestHintDuringTransientIsNoOp(t *testing.T) {
	e := testEngine()
	// Start an activation (miss access), then hint a different row in
	// the same bank mid-activation: the hint must not disturb it.
	res := e.Access(0, e.Map.Encode(0, 1, 0), false, 1)
	before := e.banks[0]
	e.Hint(1, e.Map.Encode(0, 2, 0), false) // bank is Activating
	if e.banks[0] != before {
		t.Fatal("hint during activation mutated bank state")
	}
	_ = res
}

func TestHintSameRowIsNoOp(t *testing.T) {
	e := testEngine()
	res := e.Access(0, e.Map.Encode(0, 3, 0), false, 1)
	acts := e.Stats().Activates
	e.Hint(res.LastData+20, e.Map.Encode(0, 3, 8), false)
	if e.Stats().Activates != acts || e.Stats().HintPrecharges != 0 {
		t.Fatal("hint for the already-open row should do nothing")
	}
}

func TestHintBlockedByTRASWindow(t *testing.T) {
	e := testEngine()
	e.Access(0, e.Map.Encode(0, 1, 0), false, 1)
	// Immediately hint a conflicting row: tRAS (6) has not elapsed, the
	// precharge would be illegal, so the hint must decline.
	e.Hint(2, e.Map.Encode(0, 2, 0), false)
	if e.Stats().HintPrecharges != 0 {
		t.Fatal("hint precharged inside the tRAS window")
	}
	row, open := e.OpenRow(0)
	if !open || row != 1 {
		t.Fatal("open row disturbed")
	}
}

func TestTickMaterializesRefreshEagerly(t *testing.T) {
	tm := DDR266()
	tm.TREFI = 50
	tm.TRFC = 9
	e := NewEngine(tm, DefaultAddrMap())
	e.Tick(49)
	if e.Stats().Refreshes != 0 {
		t.Fatal("refresh before due")
	}
	e.Tick(50)
	if e.Stats().Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1 at the due cycle", e.Stats().Refreshes)
	}
	// Eager (Tick) and lazy (Access) materialization give the same
	// post-refresh access timing.
	lazy := NewEngine(tm, DefaultAddrMap())
	eagerRes := e.Access(70, 0x40, false, 1)
	lazyRes := lazy.Access(70, 0x40, false, 1)
	if eagerRes.FirstData != lazyRes.FirstData {
		t.Fatalf("eager %d vs lazy %d first data", eagerRes.FirstData, lazyRes.FirstData)
	}
}

func TestTickNoRefreshConfigured(t *testing.T) {
	e := testEngine() // NoRefresh
	e.Tick(1 << 20)
	if e.Stats().Refreshes != 0 {
		t.Fatal("tick refreshed with refresh disabled")
	}
}

func TestPermitDuringRefreshWindow(t *testing.T) {
	tm := DDR266()
	tm.TREFI = 100
	tm.TRFC = 9
	e := NewEngine(tm, DefaultAddrMap())
	if !e.Permit(99, 0) {
		t.Fatal("permit should hold before the refresh")
	}
	// At the due cycle the refresh materializes and blocks.
	if e.Permit(100, 0) {
		t.Fatal("permit should drop during the refresh window")
	}
	// After tRFC the device is available again.
	if !e.Permit(100+9, 0) {
		t.Fatal("permit should recover after tRFC")
	}
}

func TestAccessLatencyBoundsProperty(t *testing.T) {
	// No access's request-to-first-data latency (absent refresh) can be
	// lower than tCL/tWL or higher than tRP+tRCD+tCL plus the maximum
	// in-flight drain time of earlier work.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := testEngine()
		now := sim.Cycle(0)
		for i := 0; i < 60; i++ {
			write := rng.Intn(2) == 0
			beats := 1 + rng.Intn(16)
			res := e.Access(now, uint32(rng.Intn(1<<22))&^3, write, beats)
			lat := res.FirstData - now
			minLat := e.T.TCL
			if write {
				minLat = e.T.TWL
			}
			if lat < minLat {
				return false
			}
			// Generous upper bound: precharge+activate+column plus the
			// longest possible earlier-burst drain + recovery windows.
			upper := e.T.TRP + e.T.TRCD + e.T.TCL + e.T.TWR + e.T.TRC + 16
			if lat > upper+sim.Cycle(16) {
				return false
			}
			now = res.LastData + sim.Cycle(rng.Intn(4))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAlternateAddrMapGeometries(t *testing.T) {
	for _, m := range []AddrMap{
		{BeatBytesLog2: 2, ColBits: 9, BankBits: 2, RowBits: 12},
		{BeatBytesLog2: 2, ColBits: 8, BankBits: 3, RowBits: 12}, // 8 banks
		{BeatBytesLog2: 3, ColBits: 8, BankBits: 2, RowBits: 12}, // 64-bit bus
	} {
		e := NewEngine(DDR266().NoRefresh(), m)
		if e.Banks() != m.Banks() {
			t.Fatalf("banks %d vs %d", e.Banks(), m.Banks())
		}
		res := e.Access(0, 0, false, 4)
		if res.Kind != AccessMiss {
			t.Fatalf("map %+v: first access %v", m, res.Kind)
		}
		// Round-trip still holds for the alternate geometry.
		bank, row, col := m.Decode(m.Encode(m.Banks()-1, 5, 7))
		if bank != m.Banks()-1 || row != 5 || col != 7 {
			t.Fatalf("map %+v: decode mismatch", m)
		}
	}
}

func TestRefreshStallReporting(t *testing.T) {
	tm := DDR266()
	tm.TREFI = 40
	tm.TRFC = 9
	e := NewEngine(tm, DefaultAddrMap())
	res := e.Access(41, 0x40, false, 1)
	if res.RefreshStall == 0 {
		t.Fatal("access behind a refresh should report the stall")
	}
	if res.Latency(41) < res.RefreshStall {
		t.Fatal("latency must include the refresh stall")
	}
}

func TestClosedPagePolicyAutoPrecharges(t *testing.T) {
	e := testEngine()
	e.Policy = ClosedPage
	m := e.Map
	first := e.Access(0, m.Encode(0, 1, 0), false, 4)
	if first.Kind != AccessMiss {
		t.Fatalf("first access %v", first.Kind)
	}
	// The bank auto-precharged: a later access to the SAME row is a
	// miss, not a hit.
	second := e.Access(first.LastData+20, m.Encode(0, 1, 16), false, 4)
	if second.Kind != AccessMiss {
		t.Fatalf("closed-page re-access kind %v, want miss", second.Kind)
	}
	if e.Stats().Precharges < 2 {
		t.Fatalf("expected auto-precharges, stats %+v", e.Stats())
	}
}

func TestClosedPageBeatsOpenPageOnRowThrash(t *testing.T) {
	m := DefaultAddrMap()
	thrash := func(policy PagePolicy) sim.Cycle {
		e := NewEngine(DDR266().NoRefresh(), m)
		e.Policy = policy
		now := sim.Cycle(0)
		var last sim.Cycle
		for i := 0; i < 40; i++ {
			// Same bank, new row every access, with think time between:
			// the auto-precharge hides in the gap, which a demand
			// conflict precharge cannot.
			res := e.Access(now, m.Encode(0, uint32(i), 0), false, 4)
			last = res.LastData
			now = last + 10
		}
		return last
	}
	open, closed := thrash(OpenPage), thrash(ClosedPage)
	if closed >= open {
		t.Fatalf("closed page should win on row thrash: closed=%d open=%d", closed, open)
	}
}

func TestOpenPageBeatsClosedPageOnStreaming(t *testing.T) {
	m := DefaultAddrMap()
	stream := func(policy PagePolicy) sim.Cycle {
		e := NewEngine(DDR266().NoRefresh(), m)
		e.Policy = policy
		now := sim.Cycle(0)
		var last sim.Cycle
		for i := 0; i < 40; i++ {
			res := e.Access(now, uint32(i*16), false, 4) // sequential
			last = res.LastData
			now = last + 1
		}
		return last
	}
	open, closed := stream(OpenPage), stream(ClosedPage)
	if open >= closed {
		t.Fatalf("open page should win on streaming: open=%d closed=%d", open, closed)
	}
}

func TestPagePolicyString(t *testing.T) {
	if OpenPage.String() == "" || ClosedPage.String() == "" || PagePolicy(7).String() == "" {
		t.Fatal("PagePolicy strings")
	}
}

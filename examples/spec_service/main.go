// Spec service walkthrough: start the simulation service in-process,
// submit the declarative workload spec in spec.json, and watch the
// content-addressed cache work — the second submission returns the
// byte-identical body without re-simulating.
//
//	go run ./examples/spec_service
//
// The same requests work against a standalone server
// (`go run ./cmd/simd` + curl); see the README's service section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/service"
	"repro/internal/spec"
)

// post submits body to url and returns the status, X-Cache header and
// response body.
func post(url string, body []byte) (int, string, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), out, err
}

func main() {
	// 1. Load and validate the declarative workload spec. The spec is
	// data: it could as well have arrived over the wire or from a
	// scenario store.
	raw, err := os.ReadFile(filepath.Join("examples", "spec_service", "spec.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "run from the repository root: %v\n", err)
		os.Exit(1)
	}
	sp, err := spec.Decode(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hash, _ := sp.Hash()
	fmt.Printf("spec %q — content hash %s\n", sp.Name, hash[:16])

	// 2. Start the service. In production this is `go run ./cmd/simd`;
	// here it runs in-process on an ephemeral port.
	srv := service.New(service.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 3. Compare the spec on both models. First submission simulates.
	req, _ := json.Marshal(map[string]any{"spec": sp})
	status, cache, body, err := post(ts.URL+"/compare", req)
	if err != nil || status != http.StatusOK {
		fmt.Fprintf(os.Stderr, "compare: status %d err %v: %s\n", status, err, body)
		os.Exit(1)
	}
	var row service.CompareResponse
	json.Unmarshal(body, &row)
	fmt.Printf("first  /compare: X-Cache=%-5s RTL=%d TL=%d diff=%.2f%%\n",
		cache, row.RTLCycles, row.TLMCycles, row.DiffPct)

	// 4. Submit the identical spec again: served from the cache,
	// byte-identical, no second simulation.
	_, cache2, body2, _ := post(ts.URL+"/compare", req)
	fmt.Printf("second /compare: X-Cache=%-5s byte-identical=%v\n", cache2, bytes.Equal(body, body2))
	c := srv.CountersSnapshot()
	fmt.Printf("service counters: jobs=%d cache_hits=%d coalesced=%d\n", c.Jobs, c.CacheHits, c.Coalesced)

	// 5. The built-in scenario library is served by name.
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var infos []service.ScenarioInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	fmt.Printf("%d library scenarios; e.g. %s (%s)\n", len(infos), infos[0].Name, infos[0].Hash[:16])

	nameReq, _ := json.Marshal(map[string]any{"scenario": infos[0].Name, "model": "tl"})
	_, _, body3, _ := post(ts.URL+"/run", nameReq)
	var run service.RunResponse
	json.Unmarshal(body3, &run)
	fmt.Printf("ran %q by name on %s: %d cycles, completed=%v\n", run.Name, run.Model, run.Cycles, run.Completed)
}

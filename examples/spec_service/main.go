// Spec service walkthrough and smoke check: start the simulation
// service in-process, submit the declarative workload spec in
// spec.json, and watch the content-addressed cache work — the second
// submission returns the byte-identical body without re-simulating.
// Then sweep a parameter grid through POST /sweep (rows stream as
// NDJSON), restart the server over the same disk store, and confirm
// the whole sweep replays from disk as hits.
//
//	go run ./examples/spec_service
//
// The walkthrough asserts each step and exits nonzero on any
// violation, so CI runs it as the service smoke test. The same
// requests work against a standalone server (`go run ./cmd/simd
// -store DIR` + curl); see the README's service section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/spec"
)

// fail aborts the walkthrough; CI treats any nonzero exit as a smoke
// failure.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spec_service: "+format+"\n", args...)
	os.Exit(1)
}

// post submits body to url and returns the status, X-Cache header and
// response body.
func post(url string, body []byte) (int, string, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), out, err
}

// sweepGrid is the small demonstration grid: write-buffer depth ×
// bank interleaving over the spec.json workload, 8 variants.
func sweepGrid(sp spec.Spec) []byte {
	req, err := json.Marshal(map[string]any{
		"base":  sp,
		"name":  "demo/grid",
		"model": "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 8, 16}},
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
	})
	if err != nil {
		fail("%v", err)
	}
	return req
}

// runSweep posts the grid and returns every streamed NDJSON data row
// plus the per-disposition counts. The stream must end with the
// terminal summary row ({"done":true,...}) — its absence means the
// stream was truncated mid-grid, which the smoke treats as a failure.
func runSweep(url string, req []byte) (rows []service.SweepRow, byCache map[string]int) {
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(req))
	if err != nil {
		fail("sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("sweep: status %d: %s", resp.StatusCode, body)
	}
	byCache = map[string]int{}
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var row service.SweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			return err
		}
		if row.Error != "" {
			fail("sweep row %s: %s", row.Name, row.Error)
		}
		rows = append(rows, row)
		byCache[row.Cache]++
		return nil
	})
	if err != nil {
		fail("sweep stream: %v", err)
	}
	if !done {
		fail("sweep stream ended without a terminal summary (%d rows) — truncated", len(rows))
	}
	if summary.Rows != len(rows) || summary.Errors != 0 {
		fail("sweep summary %+v does not match %d clean rows", summary, len(rows))
	}
	return rows, byCache
}

func main() {
	// 1. Load and validate the declarative workload spec. The spec is
	// data: it could as well have arrived over the wire or from a
	// scenario store.
	raw, err := os.ReadFile(filepath.Join("examples", "spec_service", "spec.json"))
	if err != nil {
		fail("run from the repository root: %v", err)
	}
	sp, err := spec.Decode(raw)
	if err != nil {
		fail("%v", err)
	}
	if err := sp.Validate(); err != nil {
		fail("%v", err)
	}
	hash, _ := sp.Hash()
	fmt.Printf("spec %q — content hash %s\n", sp.Name, hash[:16])

	// 2. Start the service with a disk-backed result store. In
	// production this is `go run ./cmd/simd -store DIR`; here it runs
	// in-process on an ephemeral port over a temp directory.
	storeDir, err := os.MkdirTemp("", "simstore")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(storeDir)
	srv, err := service.New(service.Options{StoreDir: storeDir})
	if err != nil {
		fail("%v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	// 3. Compare the spec on both models. First submission simulates.
	req, _ := json.Marshal(map[string]any{"spec": sp})
	status, cache, body, err := post(ts.URL+"/compare", req)
	if err != nil || status != http.StatusOK {
		fail("compare: status %d err %v: %s", status, err, body)
	}
	var row service.CompareResponse
	json.Unmarshal(body, &row)
	fmt.Printf("first  /compare: X-Cache=%-5s RTL=%d TL=%d diff=%.2f%%\n",
		cache, row.RTLCycles, row.TLMCycles, row.DiffPct)
	if cache != "miss" {
		fail("first compare X-Cache = %q, want miss", cache)
	}

	// 4. Submit the identical spec again: served from the cache,
	// byte-identical, no second simulation.
	_, cache2, body2, _ := post(ts.URL+"/compare", req)
	fmt.Printf("second /compare: X-Cache=%-5s byte-identical=%v\n", cache2, bytes.Equal(body, body2))
	if cache2 != "hit" || !bytes.Equal(body, body2) {
		fail("cached replay broken: X-Cache=%q identical=%v", cache2, bytes.Equal(body, body2))
	}
	c := srv.CountersSnapshot()
	fmt.Printf("service counters: jobs=%d cache_hits=%d coalesced=%d\n", c.Jobs, c.CacheHits, c.Coalesced)

	// 5. The built-in scenario library is served by name.
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		fail("%v", err)
	}
	var infos []service.ScenarioInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	fmt.Printf("%d library scenarios; e.g. %s (%s)\n", len(infos), infos[0].Name, infos[0].Hash[:16])

	nameReq, _ := json.Marshal(map[string]any{"scenario": infos[0].Name, "model": "tl"})
	_, _, body3, _ := post(ts.URL+"/run", nameReq)
	var run service.RunResponse
	json.Unmarshal(body3, &run)
	fmt.Printf("ran %q by name on %s: %d cycles, completed=%v\n", run.Name, run.Model, run.Cycles, run.Completed)
	if run.Cycles == 0 || !run.Completed {
		fail("library run implausible: %+v", run)
	}

	// 6. Sweep a 4×2 parameter grid (write-buffer depth × bank
	// interleaving). Rows stream back as NDJSON while the grid
	// simulates on the farm.
	gridReq := sweepGrid(sp)
	rows, byCache := runSweep(ts.URL, gridReq)
	fmt.Printf("swept %d variants: dispositions %v\n", len(rows), byCache)
	if len(rows) != 8 {
		fail("sweep produced %d rows, want 8", len(rows))
	}
	if byCache["miss"] != 8 {
		fail("cold sweep dispositions %v, want 8 misses", byCache)
	}

	// 7. Restart the service over the same store directory: the whole
	// grid — and the earlier compare — replay from disk, byte-identical,
	// with zero new simulations.
	ts.Close()
	srv.Close()
	srv2, err := service.New(service.Options{StoreDir: storeDir})
	if err != nil {
		fail("%v", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	rows2, byCache2 := runSweep(ts2.URL, gridReq)
	_, cache3, body4, _ := post(ts2.URL+"/compare", req)
	fmt.Printf("after restart: sweep dispositions %v, /compare X-Cache=%s\n", byCache2, cache3)
	if len(rows2) != 8 || byCache2["hit"] != 8 {
		fail("restarted sweep dispositions %v, want 8 hits", byCache2)
	}
	// Cold rows arrive in completion order, warm rows in grid order;
	// match them by spec hash.
	coldByHash := map[string]json.RawMessage{}
	for _, r := range rows {
		coldByHash[r.Hash] = r.Result
	}
	for _, r := range rows2 {
		if !bytes.Equal(r.Result, coldByHash[r.Hash]) {
			fail("restarted sweep row %s differs", r.Name)
		}
	}
	if cache3 != "hit" || !bytes.Equal(body4, body) {
		fail("restarted compare not served from store: X-Cache=%q", cache3)
	}
	if jobs := srv2.CountersSnapshot().Jobs; jobs != 0 {
		fail("restarted server re-simulated %d jobs", jobs)
	}

	// 8. Analyze the same grid through POST /sweep/analyze: one JSON
	// document — argmin, top-K, per-axis summaries and a Pareto
	// frontier — computed from the same cached results (still zero new
	// simulations), with the best variant agreeing with an argmin
	// computed by hand from the raw sweep rows.
	analyzeReq, _ := json.Marshal(map[string]any{
		"base":  sp,
		"name":  "demo/grid",
		"model": "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 8, 16}},
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
		"metric":   "cycles",
		"top_k":    3,
		"frontier": map[string]any{"x": "cycles", "y": "throughput", "y_objective": "max"},
	})
	status, _, analysisBody, err := post(ts2.URL+"/sweep/analyze", analyzeReq)
	if err != nil || status != http.StatusOK {
		fail("analyze: status %d err %v: %s", status, err, analysisBody)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(analysisBody, &doc); err != nil {
		fail("decoding analysis: %v", err)
	}
	if doc.Variants != 8 || doc.Analyzed != 8 || doc.Incomplete {
		fail("analysis incomplete over a healthy grid: %s", analysisBody)
	}
	wantBest, wantCycles := "", float64(0)
	for _, r := range rows2 {
		var res service.RunResponse
		if err := json.Unmarshal(r.Result, &res); err != nil {
			fail("%v", err)
		}
		c := float64(res.Cycles)
		if wantBest == "" || c < wantCycles || (c == wantCycles && r.Hash < wantBest) {
			wantBest, wantCycles = r.Hash, c
		}
	}
	if doc.Best == nil || doc.Best.Hash != wantBest || doc.Best.Value != wantCycles {
		fail("analysis best %+v disagrees with row argmin (%s, %v)", doc.Best, wantBest, wantCycles)
	}
	if len(doc.Top) != 3 || len(doc.Groups) != 2 || doc.Frontier == nil || len(doc.Frontier.Points) == 0 {
		fail("analysis document thin: %s", analysisBody)
	}
	if jobs := srv2.CountersSnapshot().Jobs; jobs != 0 {
		fail("analyze re-simulated %d jobs", jobs)
	}
	fmt.Printf("analysis: best %s=%g at %s, %d frontier points, incomplete=%v\n",
		doc.Metric, doc.Best.Value, doc.Best.Name, len(doc.Frontier.Points), doc.Incomplete)

	// 9. Observability. A request that misses carries a per-stage
	// X-Timing breakdown and echoes the caller's X-Request-ID; the
	// /metrics scrape shows the restart-replay as disk_hit tier counts
	// (8 sweep rows + the compare), not re-simulations.
	missReq, _ := json.Marshal(map[string]any{"scenario": infos[0].Name, "model": "rtl"})
	hreq, _ := http.NewRequest(http.MethodPost, ts2.URL+"/run", bytes.NewReader(missReq))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.RequestIDHeader, "smoke-trace-1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		fail("traced run: %v", err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hresp.Header.Get("X-Cache") != "miss" {
		fail("traced run: status %d X-Cache %q, want a 200 miss", hresp.StatusCode, hresp.Header.Get("X-Cache"))
	}
	if rid := hresp.Header.Get(obs.RequestIDHeader); rid != "smoke-trace-1" {
		fail("request ID not echoed: %q", rid)
	}
	timing := hresp.Header.Get(service.TimingHeader)
	if !strings.Contains(timing, "queue=") || !strings.Contains(timing, "simulate=") || !strings.Contains(timing, "encode=") {
		fail("miss response X-Timing %q lacks the per-stage breakdown", timing)
	}

	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		fail("metrics: %v", err)
	}
	fams, err := obs.ParseText(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		fail("parsing metrics: %v", err)
	}
	tier := func(name string) int {
		vals := obs.Find(fams, "simd_cache_requests_total", "tier", name)
		if len(vals) != 1 {
			fail("tier %s: %v", name, vals)
		}
		n, err := strconv.Atoi(vals[0])
		if err != nil {
			fail("tier %s: %v", name, err)
		}
		return n
	}
	diskHits := tier("disk_hit")
	if diskHits < 8 {
		fail("disk_hit tier = %d after restart replay, want >= 8", diskHits)
	}
	if up := obs.Find(fams, "simd_http_requests_total", "endpoint", "/run", "code", "200"); len(up) != 1 {
		fail("simd_http_requests_total{/run,200} missing: %v", up)
	}
	fmt.Printf("metrics: tiers disk_hit=%d memory_hit=%d miss=%d; X-Timing %q\n",
		diskHits, tier("memory_hit"), tier("miss"), timing)
	fmt.Println("smoke OK: streaming sweep + disk store replay + grid analysis + metrics/tracing verified")
}

// Port API: the paper's §3.2 transaction-port protocol, verbatim — a
// master calls CheckGrant(), then Read(addr, data, ctrl) / Write(addr,
// data, ctrl) and receives OK, with the cycle timing of each transfer
// reported through the ctrl record.
//
//	go run ./examples/port_api
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/tlm"
)

func main() {
	port := tlm.NewPort(config.Default(1))

	// The paper's master-port behavior: check grant, then transact.
	if !port.CheckGrant() {
		panic("bus did not grant")
	}

	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	wctrl := tlm.Ctrl{Beats: 8}
	if st := port.Write(0x2000, payload, &wctrl); st != tlm.OK {
		panic("write failed: " + st.String())
	}
	fmt.Printf("Write(0x2000) -> %v: req@%d grant@%d data %d..%d\n",
		tlm.OK, wctrl.ReqCycle, wctrl.GrantCycle, wctrl.FirstData, wctrl.Done)

	got := make([]byte, 32)
	rctrl := tlm.Ctrl{Beats: 8}
	if st := port.Read(0x2000, got, &rctrl); st != tlm.OK {
		panic("read failed: " + st.String())
	}
	fmt.Printf("Read(0x2000)  -> %v: req@%d grant@%d data %d..%d\n",
		tlm.OK, rctrl.ReqCycle, rctrl.GrantCycle, rctrl.FirstData, rctrl.Done)

	for i := range payload {
		if got[i] != payload[i] {
			panic("data mismatch")
		}
	}
	fmt.Println("read data matches written data")
	fmt.Printf("port clock now at cycle %d\n", port.Now())

	// Protocol violations are rejected with ILLEGAL, mirroring the
	// assertion-based error handling of §3.5.
	bad := tlm.Ctrl{Beats: 4}
	if st := port.Read(0x3F8, nil, &bad); st == tlm.ErrIllegal {
		fmt.Println("1KB-boundary-crossing burst correctly rejected as ILLEGAL")
	}
}

// Chaos drill: drive a supervised 3-shard cluster through the fault
// menu — SIGKILL mid-sweep, a crash-looping worker, on-disk result
// corruption — and prove the serving layer's promises survive all of
// it: zero error rows under single-shard loss, byte-identical
// analyses, truthful summaries and healthz verdicts. The drill:
//
//  1. computes the fault-free reference: an in-process single server
//     runs a 64-variant RTL grid through /sweep/analyze; that JSON
//     document is the byte-exact truth every later analysis must
//     reproduce, faults or no faults;
//
//  2. spawns three real simd worker processes under the shard
//     supervisor behind an in-process router, streams the 64-variant
//     sweep cold, and SIGKILLs the busiest shard after its first
//     row: all 64 rows must still arrive with ZERO error rows — the
//     dead shard's variants served by the next-ranked live shard and
//     tagged with their failover path — and the terminal summary
//     must be truthful;
//
//  3. waits for the supervisor to revive the victim and requires
//     POST /sweep/analyze to return a document byte-identical to the
//     fault-free reference, incomplete=false — and the sweep MANIFEST
//     to have survived the SIGKILL atomically: GET /sweep/{id} parses
//     cleanly and reports the sweep complete (the checkpoint write is
//     tmp+rename, so a kill can lose a checkpoint but never tear
//     one), GET /sweep/{id}/resume replays the tail with zero error
//     rows, and the post-hoc POST /sweep/{id}/analyze is
//     byte-identical to the fault-free reference;
//
//  4. crash-loops a different shard (SIGKILL every revival) until
//     the supervisor exhausts its respawn budget: healthz must
//     report that shard dead and the cluster not-OK, yet a
//     dead-owned /run is answered by a survivor with X-Failover and
//     the analysis is STILL complete and byte-identical;
//
//  5. corrupts result envelopes in the first victim's store
//     directory and SIGKILLs it once more: the revived worker must
//     count and delete the damage (healthz store.corrupt_at_open),
//     and a final sweep — one shard permanently dead, one freshly
//     healed of corruption — still streams zero error rows,
//     byte-identical to round 2.
//
//     go run ./examples/chaos_service [-simd PATH]
//
// With no -simd the drill builds the binary itself (`go build`). CI
// runs this as the chaos smoke; it exits nonzero on any violation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/sweep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos_service: "+format+"\n", args...)
	os.Exit(1)
}

// chaosBase is the drill workload: RTL-model heavy enough that a
// 64-variant sweep gives the faults a real window to land in, light
// enough that the whole drill stays a smoke test.
func chaosBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "chaos/base",
		Params:      config.Default(2),
		MaxCycles:   50_000_000,
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 12_000, Gap: 2, WrapBytes: 0x40000},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 6_000, WrapBytes: 0x20000},
		},
	}
}

// gridAxes is the 64-variant product, in both the local (expansion)
// and wire forms — they MUST stay in lockstep or the locally computed
// owners would not match what the router actually routes.
func gridAxes() ([]sweep.Axis, []service.SweepAxis) {
	local := []sweep.Axis{
		{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 4}, {V: 8}}},
		{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		{Param: sweep.ParamClosedPage, Values: []sweep.Value{{V: true}, {V: false}}},
		{Param: sweep.ParamFilters, Values: []sweep.Value{{V: "all"}, {V: "rr-only"}}},
		{Param: sweep.ParamPipelining, Values: []sweep.Value{{V: true}, {V: false}}},
	}
	wire := []service.SweepAxis{
		{Param: "write_buffer_depth", Values: []any{0, 2, 4, 8}},
		{Param: "bi_enabled", Values: []any{true, false}},
		{Param: "closed_page", Values: []any{true, false}},
		{Param: "filters", Values: []any{"all", "rr-only"}},
		{Param: "pipelining", Values: []any{true, false}},
	}
	return local, wire
}

func analyzeRequest() service.AnalyzeRequest {
	base := chaosBase()
	_, wire := gridAxes()
	return service.AnalyzeRequest{
		SweepRequest: service.SweepRequest{
			Base: &base, Name: "chaos/grid", Model: "rtl", Axes: wire,
		},
		Request: agg.Request{
			Metric: "cycles", TopK: 5,
			Frontier: &agg.FrontierSpec{X: "cycles", Y: "throughput", YObjective: agg.ObjectiveMax},
		},
	}
}

// runSweep streams the grid and invokes onRow per data row as it
// arrives (the kill hook); it fails the drill on any truncation or a
// summary that disagrees with the stream.
func runSweep(url string, req []byte, onRow func(r shard.Row)) (rows []shard.Row, summary service.SweepSummary, hdr http.Header) {
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(req))
	if err != nil {
		fail("sweep: %v", err)
	}
	defer resp.Body.Close()
	hdr = resp.Header
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("sweep status %d: %s", resp.StatusCode, body)
	}
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var r shard.Row
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		rows = append(rows, r)
		if onRow != nil {
			onRow(r)
		}
		return nil
	})
	if err != nil {
		fail("sweep stream: %v", err)
	}
	if !done {
		fail("sweep stream ended without a terminal summary (%d rows) — TRUNCATED", len(rows))
	}
	if summary.Rows != len(rows) {
		fail("summary says %d rows, stream carried %d", summary.Rows, len(rows))
	}
	return rows, summary, hdr
}

func clusterHealth(url string) (shard.ClusterHealth, error) {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return shard.ClusterHealth{}, err
	}
	defer resp.Body.Close()
	var h shard.ClusterHealth
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// postAnalyze submits a /sweep/analyze request through the typed
// client, returning the decoded document plus the raw bytes for
// byte-identity checks.
func postAnalyze(url string, req service.AnalyzeRequest) (agg.Analysis, []byte) {
	client := &service.Client{Base: url}
	doc, body, err := client.AnalyzeSweep(context.Background(), req)
	if err != nil {
		fail("analyze against %s: %v (%s)", url, err, body)
	}
	return *doc, body
}

// waitShard polls the cluster healthz until cond accepts the shard's
// entry (30s budget).
func waitShard(front string, i int, what string, cond func(shard.ShardHealth) bool) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := clusterHealth(front)
		if err == nil && len(h.Shards) > i && cond(h.Shards[i]) {
			return
		}
		if time.Now().After(deadline) {
			fail("shard %d never reached %s: %+v (err %v)", i, what, h, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func main() {
	bin := ""
	if len(os.Args) > 2 && os.Args[1] == "-simd" {
		bin = os.Args[2]
	}
	tmp, err := os.MkdirTemp("", "chaossmoke")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	if bin == "" {
		bin = filepath.Join(tmp, "simd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/simd").CombinedOutput()
		if err != nil {
			fail("building simd: %v\n%s", err, out)
		}
	}

	// 1. The fault-free reference analysis, computed in-process.
	ref, err := service.New(service.Options{Workers: 4, StoreDir: filepath.Join(tmp, "ref")})
	if err != nil {
		fail("reference server: %v", err)
	}
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	defer ref.Close()
	refDoc, refBody := postAnalyze(refTS.URL, analyzeRequest())
	if refDoc.Incomplete || refDoc.Analyzed != 64 || refDoc.Best == nil {
		fail("fault-free reference implausible: %s", refBody)
	}
	fmt.Printf("fault-free reference: 64 variants analyzed, best %s=%g at %s\n",
		refDoc.Metric, refDoc.Best.Value, refDoc.Best.Name)

	// The cluster: three real worker processes under the supervisor,
	// behind an in-process router. A tight respawn budget with a huge
	// StableUptime makes the crash-loop drill deterministic: every
	// kill in this drill counts as part of one consecutive campaign.
	dir := filepath.Join(tmp, "cluster")
	sup, err := shard.SpawnWith(bin, 3, func(i int) []string {
		return []string{"-workers", "1", "-store", filepath.Join(dir, fmt.Sprintf("shard-%d", i))}
	}, shard.SpawnOptions{
		RespawnBase:     250 * time.Millisecond,
		RespawnMax:      time.Second,
		RespawnAttempts: 3,
		StableUptime:    time.Hour,
	})
	if err != nil {
		fail("spawning cluster: %v", err)
	}
	defer sup.Stop()
	rt, err := shard.New(shard.Options{
		Backends:         sup.URLs(),
		Supervisor:       sup,
		BreakerThreshold: 2,
		BreakerInterval:  200 * time.Millisecond,
	})
	if err != nil {
		fail("router: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Local routing table: owner and full rendezvous rank per variant.
	local, _ := gridAxes()
	variants := sweep.MustExpand(sweep.Grid{Name: "chaos/grid", Base: chaosBase(), Axes: local})
	if len(variants) != 64 {
		fail("grid expanded to %d variants, want 64 — adjust the axes", len(variants))
	}
	owners := map[string]int{}
	ranks := map[string][]int{}
	perShard := []int{0, 0, 0}
	for _, v := range variants {
		owners[v.Hash] = shard.Owner(v.Hash, 3)
		ranks[v.Hash] = shard.Rank(v.Hash, 3)
		perShard[owners[v.Hash]]++
	}
	if perShard[0] == 0 || perShard[1] == 0 || perShard[2] == 0 {
		fail("degenerate 3-way partition %v", perShard)
	}

	sweepReq, _ := json.Marshal(service.SweepRequest{
		Base: func() *spec.Spec { b := chaosBase(); return &b }(),
		Name: "chaos/grid", Model: "rtl", Axes: func() []service.SweepAxis { _, w := gridAxes(); return w }(),
	})

	// 2. SIGKILL the busiest shard mid-sweep; failover must keep the
	// stream error-free.
	victim := 0
	for i, n := range perShard {
		if n > perShard[victim] {
			victim = i
		}
	}
	victimPid := sup.Procs()[victim].Pid
	fmt.Printf("cold 64-variant RTL sweep (split %v); killing shard %d (pid %d) after its first row\n",
		perShard, victim, victimPid)
	killed := false
	rows, summary, sweepHdr := runSweep(front.URL, sweepReq, func(r shard.Row) {
		if !killed && r.Shard == victim && r.Error == "" {
			syscall.Kill(victimPid, syscall.SIGKILL)
			killed = true
			fmt.Printf("  killed shard %d after row %s\n", victim, r.Name)
		}
	})
	if !killed {
		fail("victim shard produced no successful row to trigger on")
	}
	if len(rows) != 64 || summary.Errors != 0 {
		fail("kill sweep: %d rows, %d summary errors — want 64 rows, zero errors", len(rows), summary.Errors)
	}
	byHash := map[string][]byte{}
	failovers, stolen := 0, 0
	for _, r := range rows {
		if r.Error != "" {
			fail("error row %s under single-shard loss: %s", r.Name, r.Error)
		}
		byHash[r.Hash] = r.Result
		if r.Stolen != "" {
			// Work-stealing legitimately serves a row away from its
			// owner — but the tag must be consistent: owner->thief with
			// the thief the serving shard and the owner the rendezvous
			// owner.
			stolen++
			var o, th int
			if _, err := fmt.Sscanf(r.Stolen, "%d->%d", &o, &th); err != nil ||
				o == th || th != r.Shard || o != owners[r.Hash] {
				fail("row %s stolen tag %q inconsistent (served by %d, owner %d)",
					r.Name, r.Stolen, r.Shard, owners[r.Hash])
			}
			continue
		}
		if r.Failover == "" {
			if r.Shard != owners[r.Hash] {
				fail("row %s on shard %d without a failover tag, owner %d", r.Name, r.Shard, owners[r.Hash])
			}
			continue
		}
		failovers++
		// The failover target is not arbitrary: it is the next LIVE
		// shard in the variant's own rendezvous rank order.
		next := -1
		for _, idx := range ranks[r.Hash] {
			if idx != victim {
				next = idx
				break
			}
		}
		if owners[r.Hash] != victim || r.Shard != next {
			fail("failover row %s owner %d served by shard %d, want next-ranked live shard %d", r.Name, owners[r.Hash], r.Shard, next)
		}
		if want := fmt.Sprintf("%d->%d", victim, next); r.Failover != want {
			fail("row %s failover %q, want %q", r.Name, r.Failover, want)
		}
	}
	if failovers == 0 {
		fail("no row failed over — the kill never bit")
	}
	fmt.Printf("  64 rows, 0 errors, %d failover rows, %d stolen rows, truthful summary\n", failovers, stolen)

	// 3. After the supervisor revives the victim, the analysis must
	// reproduce the fault-free reference byte-for-byte.
	waitShard(front.URL, victim, "respawned with a closed breaker", func(sh shard.ShardHealth) bool {
		return sh.OK && sh.Proc != nil && sh.Proc.State == shard.ProcRunning &&
			sh.Proc.Pid != victimPid && sh.Breaker != "open"
	})
	doc, body := postAnalyze(front.URL, analyzeRequest())
	if doc.Incomplete || doc.Analyzed != 64 {
		fail("post-respawn analysis degraded: %s", body)
	}
	if !bytes.Equal(body, refBody) {
		fail("post-respawn analysis differs from the fault-free reference:\n%s\n%s", body, refBody)
	}
	fmt.Printf("victim respawned; analysis byte-identical to the fault-free reference\n")

	// 3b. The sweep manifest survived the SIGKILL atomically. The
	// checkpoint write is tmp+rename, so the kill mid-sweep can have
	// lost the victim's last checkpoint but can never have torn the
	// manifest: GET /sweep/{id} must parse cleanly and report the
	// sweep complete, a resume must replay the tail with zero error
	// rows, and the post-hoc stored analyze must reproduce the
	// fault-free reference byte for byte without re-simulating.
	sweepID := sweepHdr.Get(service.SweepIDHeader)
	if sweepID == "" {
		fail("round-2 sweep carried no %s header", service.SweepIDHeader)
	}
	resp, err := http.Get(front.URL + "/sweep/" + sweepID)
	if err != nil {
		fail("manifest status: %v", err)
	}
	stBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("manifest status %d after SIGKILL: %s", resp.StatusCode, stBody)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(stBody, &st); err != nil {
		fail("manifest TORN after SIGKILL — status body does not parse: %v\n%s", err, stBody)
	}
	if !st.Complete || st.Total != 64 || st.DoneCount != 64 || st.FailedCount != 0 {
		fail("manifest after SIGKILL: total %d done %d failed %d complete %v, want complete 64",
			st.Total, st.DoneCount, st.FailedCount, st.Complete)
	}
	resp, err = http.Get(front.URL + "/sweep/" + sweepID + "/resume?after=31")
	if err != nil {
		fail("resume: %v", err)
	}
	resumed := 0
	rsum, rdone, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var r shard.Row
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		if r.Error != "" {
			fail("resume error row %s: %s", r.Name, r.Error)
		}
		if r.Index <= 31 {
			fail("resume replayed index %d <= 31", r.Index)
		}
		resumed++
		return nil
	})
	resp.Body.Close()
	if err != nil || !rdone || resumed != 32 || rsum.Errors != 0 {
		fail("resume after SIGKILL: %d rows done=%v errors=%d (err %v), want 32 clean rows", resumed, rdone, rsum.Errors, err)
	}
	selBuf, _ := json.Marshal(analyzeRequest().Request)
	resp, err = http.Post(front.URL+"/sweep/"+sweepID+"/analyze", "application/json", bytes.NewReader(selBuf))
	if err != nil {
		fail("stored analyze: %v", err)
	}
	storedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("stored analyze status %d: %s", resp.StatusCode, storedBody)
	}
	if !bytes.Equal(storedBody, refBody) {
		fail("stored analyze differs from the fault-free reference:\n%s\n%s", storedBody, refBody)
	}
	fmt.Printf("manifest survived the SIGKILL atomically: status complete, resume clean (32 rows), stored analyze byte-identical\n")

	// 4. Crash-loop a different shard until the supervisor gives up.
	crash := (victim + 1) % 3
	fmt.Printf("crash-looping shard %d (SIGKILL every revival, budget 3)\n", crash)
	crashDeadline := time.Now().Add(30 * time.Second)
	for {
		st := sup.Status()[crash]
		if st.State == shard.ProcDead {
			break
		}
		if st.State == shard.ProcRunning && st.Pid != 0 {
			syscall.Kill(st.Pid, syscall.SIGKILL)
		}
		if time.Now().After(crashDeadline) {
			fail("shard %d never exhausted its respawn budget: %+v", crash, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := sup.Status()[crash]; st.Respawns != 3 {
		fail("shard %d dead after %d respawns, want the full budget of 3", crash, st.Respawns)
	}
	// healthz tells the truth: the shard is dead, the cluster is
	// degraded — and the cluster still serves everything.
	waitShard(front.URL, crash, "reported dead", func(sh shard.ShardHealth) bool {
		return sh.Proc != nil && sh.Proc.State == shard.ProcDead
	})
	if h, err := clusterHealth(front.URL); err != nil || h.OK {
		fail("cluster healthz ok=%v (err %v) with shard %d dead", h.OK, err, crash)
	}
	var crashOwned *spec.Spec
	for _, v := range variants {
		if owners[v.Hash] == crash {
			sp := v.Spec
			crashOwned = &sp
			break
		}
	}
	runBuf, _ := json.Marshal(map[string]any{"spec": crashOwned, "model": "rtl"})
	resp, err = http.Post(front.URL+"/run", "application/json", bytes.NewReader(runBuf))
	if err != nil {
		fail("dead-owned /run: %v", err)
	}
	runBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("dead-owned /run: %d %s", resp.StatusCode, runBody)
	}
	if fo := resp.Header.Get("X-Failover"); !strings.HasPrefix(fo, fmt.Sprintf("%d->", crash)) {
		fail("dead-owned /run X-Failover %q, want a path out of shard %d", fo, crash)
	}
	doc, body = postAnalyze(front.URL, analyzeRequest())
	if doc.Incomplete || doc.Analyzed != 64 {
		fail("analysis with a permanently dead shard degraded: %s", body)
	}
	if !bytes.Equal(body, refBody) {
		fail("dead-shard analysis differs from the fault-free reference:\n%s\n%s", body, refBody)
	}
	fmt.Printf("shard %d dead after exhausting its budget; healthz truthful; /run fails over (X-Failover %s); analysis still byte-identical\n",
		crash, resp.Header.Get("X-Failover"))

	// 5. Corrupt the first victim's store on disk, kill it once more,
	// and require the revived worker to confess the damage — then
	// serve the same bytes as ever.
	storeDir := filepath.Join(dir, fmt.Sprintf("shard-%d", victim))
	damaged, err := chaos.CorruptResults(storeDir, 4)
	if err != nil || damaged != 4 {
		fail("corrupting %s: damaged %d (err %v), want 4", storeDir, damaged, err)
	}
	pid := sup.Procs()[victim].Pid
	syscall.Kill(pid, syscall.SIGKILL)
	waitShard(front.URL, victim, "respawned after corruption", func(sh shard.ShardHealth) bool {
		return sh.OK && sh.Proc != nil && sh.Proc.State == shard.ProcRunning &&
			sh.Proc.Pid != pid && sh.Breaker != "open"
	})
	waitShard(front.URL, victim, "reporting corrupt_at_open", func(sh shard.ShardHealth) bool {
		return sh.Health != nil && sh.Health.Store != nil && sh.Health.Store.CorruptAtOpen == 4
	})
	fmt.Printf("shard %d revived over a corrupted store: healthz reports corrupt_at_open=4 (deleted at open)\n", victim)

	final, finalSummary, _ := runSweep(front.URL, sweepReq, nil)
	if len(final) != 64 || finalSummary.Errors != 0 {
		fail("final sweep: %d rows, %d errors", len(final), finalSummary.Errors)
	}
	for _, r := range final {
		if !bytes.Equal(r.Result, byHash[r.Hash]) {
			fail("final row %s differs from round 2 — corruption or failover changed the bytes", r.Name)
		}
		if r.Stolen != "" {
			var o, th int
			if _, err := fmt.Sscanf(r.Stolen, "%d->%d", &o, &th); err != nil ||
				o == th || th != r.Shard || o != owners[r.Hash] || th == crash {
				fail("final row %s stolen tag %q inconsistent (served by %d, owner %d, dead %d)",
					r.Name, r.Stolen, r.Shard, owners[r.Hash], crash)
			}
			continue
		}
		if owners[r.Hash] == crash {
			if r.Failover == "" || r.Shard == crash {
				fail("row %s owned by dead shard %d served without failover (shard %d)", r.Name, crash, r.Shard)
			}
		} else if r.Failover != "" || r.Shard != owners[r.Hash] {
			fail("row %s on shard %d (failover %q), owner %d alive", r.Name, r.Shard, r.Failover, owners[r.Hash])
		}
	}
	fmt.Printf("final sweep over the degraded cluster: 64 rows, 0 errors, byte-identical\n")

	// 6. The router's metrics must have recorded the whole campaign in
	// monotonic counters — the drill gates on trips and failovers, NOT
	// on the instantaneous breaker-state gauge, which races against the
	// supervisor's fast respawns. The dead shard's own series are
	// absent from the aggregated scrape (nothing answers), and
	// simd_shard_up says so explicitly.
	fams := scrapeMetrics(front.URL)
	if n := sumCounter(fams, "simd_router_failovers_total"); n == 0 {
		fail("simd_router_failovers_total is zero after the kill drills")
	}
	if n := sumCounter(fams, "simd_router_breaker_opens_total"); n == 0 {
		fail("simd_router_breaker_opens_total is zero — dead shards never tripped a breaker")
	}
	if n := sumCounter(fams, "simd_router_shard_restarts_total"); n < 4 {
		fail("restart counter %d, want >= 4 (1 kill + 3 crash-loop respawns)", n)
	}
	if v := obs.Find(fams, "simd_shard_up", "shard", strconv.Itoa(crash)); len(v) != 1 || v[0] != "0" {
		fail("dead shard %d not reported down by simd_shard_up: %v", crash, v)
	}
	if v := obs.Find(fams, "simd_shard_up", "shard", strconv.Itoa(victim)); len(v) != 1 || v[0] != "1" {
		fail("revived shard %d not scrapeable: %v", victim, v)
	}
	fmt.Printf("metrics truthful: failovers=%d breaker_opens=%d restarts=%d, dead shard down in simd_shard_up\n",
		sumCounter(fams, "simd_router_failovers_total"),
		sumCounter(fams, "simd_router_breaker_opens_total"),
		sumCounter(fams, "simd_router_shard_restarts_total"))

	fmt.Println("chaos smoke OK: kill mid-sweep, crash loop to give-up, and store corruption all absorbed — zero error rows, byte-identical analyses, truthful healthz and metrics")
}

// scrapeMetrics fetches and parses the router's aggregated /metrics.
func scrapeMetrics(url string) []obs.Family {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		fail("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("metrics status %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		fail("parsing metrics: %v", err)
	}
	return fams
}

// sumCounter totals a counter family across all its label sets.
func sumCounter(fams []obs.Family, name string) int {
	total := 0
	for _, v := range obs.Find(fams, name) {
		n, err := strconv.Atoi(v)
		if err != nil {
			fail("counter %s value %q: %v", name, v, err)
		}
		total += n
	}
	return total
}

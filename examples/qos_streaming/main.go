// QoS streaming: a real-time video stream competing with two bulk DMA
// masters. Run once with the full AHB+ arbitration filter set and once
// with plain round-robin, and compare the stream's worst-case latency
// and QoS violations — the effect the AHB+ QoS registers and the
// urgency/real-time filters exist to produce (paper §2).
//
//	go run ./examples/qos_streaming
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/traffic"
)

func buildWorkload(fullFilters bool) core.Workload {
	p := config.Default(3)
	p.Masters[0].Name = "video"
	p.Masters[0].RealTime = true
	p.Masters[0].QoSObjective = 80 // cycles from request to first data
	p.Masters[1].Name = "dma0"
	p.Masters[2].Name = "dma1"
	if !fullFilters {
		// Strip the QoS machinery: plain AMBA2.0-style arbitration.
		p.Filters.Urgency = false
		p.Filters.RealTime = false
		p.Filters.Bandwidth = false
	}
	return core.Workload{
		Name:   "qos-streaming",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				// 4-beat slice every 40 cycles: a hard-deadline stream.
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 40, Count: 400},
				// Two saturating 16-beat DMA readers.
				&traffic.Sequential{Base: 0x000000, Beats: 16, Count: 800},
				&traffic.Sequential{Base: 0x080000, Beats: 16, Count: 800, WriteEvery: 2},
			}
		},
	}
}

func main() {
	fmt.Println("real-time stream vs bulk DMA: AHB+ filters vs plain round-robin")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %12s %14s\n",
		"arbitration", "meanLat", "maxLat", "violations", "totalCycles")
	for _, full := range []bool{true, false} {
		res := core.Run(buildWorkload(full), core.TLM, core.Options{})
		if !res.Completed {
			panic("run did not complete")
		}
		name := "ahb+ (7)"
		if !full {
			name = "round-robin"
		}
		video := res.Stats.Masters[0]
		fmt.Printf("%-12s %12.1f %12d %12d %14d\n",
			name, video.MeanLatency(), uint64(video.LatencyMax),
			video.QoSViolations, uint64(res.Cycles))
	}
	fmt.Println()
	fmt.Println("with the AHB+ urgency/real-time filters the stream's worst-case")
	fmt.Println("latency stays near its objective; with round-robin it is at the")
	fmt.Println("mercy of the 16-beat DMA bursts ahead of it.")
}

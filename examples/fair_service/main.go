// Fairness drill: one tenant's saturating 10,000-variant sweep must
// not starve another tenant's interactive traffic. Against a 2-shard
// supervised cluster of real simd workers (weighted-fair scheduling
// on, the default), the drill proves the internal/sched contract
// end to end:
//
//  1. tenant "alice" measures her idle-cluster baseline: a run of
//     unique interactive /run probes through the router, p99 noted;
//
//  2. tenant "sweeper" starts a 10k-variant RTL sweep (batch class —
//     the /sweep default) and the drill waits until the cluster
//     healthz shows a deep batch backlog: the sweep is saturating
//     every worker's batch queue;
//
//  3. while the sweep streams, alice's worker healthz must stay
//     honest per class: the batch queue advertises a real
//     Retry-After, the interactive class does NOT inherit it (the
//     per-class bugfix), and the sched block names the sweeper's
//     tenant queue exactly as the metric labels do;
//
//  4. alice sends paced interactive probes DURING the sweep: every
//     one must answer 200 (no admission rejection — her class queue
//     is not the sweep's), and the p99 of the probes that overlapped
//     the sweep must stay within 5x her idle baseline — bounded
//     latency under a saturating background sweep, the starvation-
//     resistance acceptance gate;
//
//  5. the sweep itself completes with done=true and ZERO error rows
//     — fairness throttles the batch class, it never breaks it — and
//     the sched metric families (simd_sched_queue_depth{tenant,class},
//     simd_sched_wait_seconds{class}) are present on the scrape.
//
//     go run ./examples/fair_service [-simd PATH] [-variants N]
//
// With no -simd the drill builds the binary itself (`go build`). CI
// runs this as the fairness smoke under -race; it exits nonzero on
// any violation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/spec"
)

const (
	shardCount   = 2
	shardWorkers = 3
	// idleProbes sizes the baseline sample; loaded probing continues
	// until the sweep ends (or maxLoadedProbes), requiring at least
	// minOverlap samples taken while the sweep was in flight.
	idleProbes      = 40
	maxLoadedProbes = 200
	minOverlap      = 30
	probePace       = 20 * time.Millisecond
	// idleFloor guards the baseline against timer noise: on a fast
	// machine the idle p99 is a few ms, and 5x a noise-sized number
	// is not a meaningful bound. The scheduler is also non-preemptive
	// — an interactive arrival must wait for an in-flight batch
	// variant to retire, so the bound has to absorb at least one
	// batch service time (tens of ms under -race). Genuine FIFO
	// starvation under a 10k backlog is SECONDS, so flooring the
	// baseline at 100ms keeps the 5x gate honest while not failing
	// on job-granularity waits.
	idleFloor = 100 * time.Millisecond
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fair_service: "+format+"\n", args...)
	os.Exit(1)
}

// fairBase is deliberately tiny — two short generators on the
// 2-master platform — so ten thousand RTL simulations stay a smoke
// test. The count axis below starts at 10 to keep each variant
// expensive enough that the sweep outlives the probing phase.
func fairBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "fair/base",
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 2, Count: 4, Gap: 1},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 2, Period: 8, Count: 2},
		},
	}
}

// sweepRequest is the saturating grid: 25 x 20 x 20 = 10,000 distinct
// workloads by default, truncated along the first axis when -variants
// asks for a smaller drill.
func sweepRequest(variants int) service.SweepRequest {
	base := fairBase()
	u := variants / 400 // 20 x 20 inner product
	if u < 1 {
		u = 1
	}
	ints := func(n, from int) []any {
		vals := make([]any, n)
		for i := 0; i < n; i++ {
			vals[i] = from + i
		}
		return vals
	}
	return service.SweepRequest{
		Base: &base, Name: "fair/grid", Model: "rtl",
		Axes: []service.SweepAxis{
			{Param: "urgency_threshold", Values: ints(u, 0)},
			{Param: "count", Values: ints(20, 10)},
			{Param: "write_buffer_depth", Values: ints(20, 0)},
		},
	}
}

// probeSpec is alice's i-th interactive request: a unique stream base
// address per probe, so every probe is a genuine cache-miss
// simulation (a cached answer would measure the LRU, not the
// scheduler) in a key space disjoint from the sweep's.
func probeSpec(i int) spec.Spec {
	sp := fairBase()
	sp.Name = fmt.Sprintf("fair/probe-%d", i)
	sp.Masters[1].Base = 0x100000 + uint32(i)*0x1000
	return sp
}

// probe posts one interactive /run as the given tenant and returns
// the request latency.
func probe(front string, i int, tenant string) time.Duration {
	body, err := json.Marshal(service.RunRequest{Spec: ptr(probeSpec(i)), Model: "rtl"})
	if err != nil {
		fail("%v", err)
	}
	req, err := http.NewRequest(http.MethodPost, front+"/run", bytes.NewReader(body))
	if err != nil {
		fail("%v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.DefaultTenantHeader, tenant)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail("probe %d: %v", i, err)
	}
	elapsed := time.Since(start)
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("probe %d status %d (interactive traffic must never be rejected for the sweep's backlog): %s",
			i, resp.StatusCode, respBody)
	}
	return elapsed
}

func ptr[T any](v T) *T { return &v }

// p99 returns the 99th-percentile of the samples (the max for small
// sample sizes — conservative, never flattering).
func p99(durs []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100 // ceil(0.99n)
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// clusterBatchQueued reads the aggregated healthz and returns the
// batch class's cluster-wide queue depth (and whether the sched
// block was present at all).
func clusterBatchQueued(front string) (int, bool) {
	resp, err := http.Get(front + "/healthz")
	if err != nil {
		return 0, false
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ch shard.ClusterHealth
	if json.Unmarshal(body, &ch) != nil {
		return 0, false
	}
	for _, cs := range ch.Sched {
		if cs.Class == sched.Batch.String() {
			return cs.Queued, true
		}
	}
	return 0, false
}

func main() {
	bin := flag.String("simd", "", "prebuilt simd binary (empty = go build it)")
	variants := flag.Int("variants", 10_000, "sweep grid size (rounded to the axes product)")
	flag.Parse()

	tmp, err := os.MkdirTemp("", "fairsvc")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	simd := *bin
	if simd == "" {
		simd = filepath.Join(tmp, "simd")
		out, err := exec.Command("go", "build", "-o", simd, "./cmd/simd").CombinedOutput()
		if err != nil {
			fail("building simd: %v\n%s", err, out)
		}
	}

	// The cluster: 2 shards x 3 workers, weighted-fair scheduling on
	// (the default), small enough that a 10k-variant sweep saturates.
	sup, err := shard.SpawnWith(simd, shardCount, func(i int) []string {
		return []string{
			"-workers", fmt.Sprint(shardWorkers),
			"-store", filepath.Join(tmp, fmt.Sprintf("shard-%d", i)),
		}
	}, shard.SpawnOptions{})
	if err != nil {
		fail("spawning cluster: %v", err)
	}
	defer sup.Stop()
	rt, err := shard.New(shard.Options{Backends: sup.URLs(), Supervisor: sup})
	if err != nil {
		fail("router: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// 1. Alice's idle baseline.
	idle := make([]time.Duration, 0, idleProbes)
	for i := 0; i < idleProbes; i++ {
		idle = append(idle, probe(front.URL, i, "alice"))
	}
	idleP99 := p99(idle)
	bound := 5 * max(idleP99, idleFloor)
	fmt.Printf("idle baseline: %d interactive probes, p99 %v (latency bound %v)\n",
		idleProbes, idleP99.Round(time.Millisecond), bound.Round(time.Millisecond))

	// 2. The sweeper's saturating sweep, drained in the background.
	sweepBuf, err := json.Marshal(sweepRequest(*variants))
	if err != nil {
		fail("%v", err)
	}
	total := (max(*variants/400, 1)) * 400
	type sweepResult struct {
		rows    int
		summary service.SweepSummary
		done    bool
	}
	sweepCh := make(chan sweepResult, 1)
	sweepStart := time.Now()
	go func() {
		req, err := http.NewRequest(http.MethodPost, front.URL+"/sweep", bytes.NewReader(sweepBuf))
		if err != nil {
			fail("%v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.DefaultTenantHeader, "sweeper")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fail("sweep: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fail("sweep status %d: %s", resp.StatusCode, body)
		}
		rows := 0
		summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
			var row shard.Row
			if err := json.Unmarshal(line, &row); err != nil {
				return err
			}
			if row.Error != "" {
				fail("sweep error row %d (fairness must throttle the batch class, never break it): %s",
					row.Index, row.Error)
			}
			rows++
			return nil
		})
		if err != nil {
			fail("sweep stream: %v", err)
		}
		sweepCh <- sweepResult{rows: rows, summary: summary, done: done}
	}()

	// Wait for genuine saturation: the cluster-wide batch queue is
	// backlogged.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if queued, ok := clusterBatchQueued(front.URL); ok && queued > 0 {
			fmt.Printf("sweep saturating: cluster batch queue depth %d\n", queued)
			break
		}
		if time.Now().After(deadline) {
			fail("cluster healthz never showed a batch backlog — sched block missing or sweep not saturating")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 3. Per-class honesty on a worker healthz mid-sweep: batch
	// advertises a real backoff, interactive does not inherit it, and
	// the sweeper's tenant queue is named exactly as the metric
	// labels key it.
	checkedWorker := false
	for attempt := 0; attempt < 100 && !checkedWorker; attempt++ {
		for _, url := range sup.URLs() {
			resp, err := http.Get(url + "/healthz")
			if err != nil {
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var h service.Health
			if json.Unmarshal(body, &h) != nil || h.Sched == nil {
				fail("worker %s healthz lacks the sched block: %s", url, body)
			}
			var batch, interactive *sched.ClassStatus
			for i := range h.Sched.Classes {
				switch h.Sched.Classes[i].Class {
				case sched.Batch.String():
					batch = &h.Sched.Classes[i]
				case sched.Interactive.String():
					interactive = &h.Sched.Classes[i]
				}
			}
			if batch == nil || interactive == nil {
				fail("worker %s sched block misses a class: %s", url, body)
			}
			if batch.Queued == 0 {
				continue // this worker drained just now; try the other
			}
			if batch.RetryAfter < 1 {
				fail("worker %s: batch queued %d yet retry_after %d", url, batch.Queued, batch.RetryAfter)
			}
			if interactive.RetryAfter > 2 {
				fail("worker %s: interactive retry_after %d inherited the sweep's backlog (batch %d) — per-class Retry-After broken",
					url, interactive.RetryAfter, batch.RetryAfter)
			}
			sweeperNamed := false
			for _, t := range h.Sched.Tenants {
				if t.Tenant == "sweeper" && t.Class == sched.Batch.String() && t.Queued > 0 {
					sweeperNamed = true
				}
			}
			if !sweeperNamed {
				fail("worker %s: batch queued %d but no sweeper tenant row in %s", url, batch.Queued, body)
			}
			checkedWorker = true
			break
		}
		if !checkedWorker {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !checkedWorker {
		fail("no worker ever showed a backlogged batch class with a sweeper tenant row")
	}
	fmt.Println("worker healthz honest per class: batch backs off, interactive does not, sweeper's queue named")

	// 4. Alice probes during the sweep. Only probes that overlapped
	// the stream count toward the loaded p99 — that is the population
	// the acceptance gate is about.
	loaded := make([]time.Duration, 0, maxLoadedProbes)
	var result *sweepResult
	for i := 0; i < maxLoadedProbes && result == nil; i++ {
		d := probe(front.URL, idleProbes+i, "alice")
		select {
		case r := <-sweepCh:
			// The sweep ended mid-probe; this sample may be partly
			// unloaded, so it is dropped.
			result = &r
		default:
			loaded = append(loaded, d)
		}
		time.Sleep(probePace)
	}
	if len(loaded) < minOverlap {
		fail("only %d probes overlapped the sweep (want >= %d) — raise -variants so the sweep outlives the probe phase",
			len(loaded), minOverlap)
	}
	loadedP99 := p99(loaded)
	fmt.Printf("loaded: %d interactive probes during the sweep, p99 %v, all 200\n",
		len(loaded), loadedP99.Round(time.Millisecond))
	if loadedP99 > bound {
		fail("interactive p99 %v under the sweep exceeds %v (5x idle p99 %v) — starvation resistance broken",
			loadedP99, bound, idleP99)
	}

	// 5. The sweep finishes intact.
	if result == nil {
		deadline := time.Now().Add(15 * time.Minute)
		for result == nil {
			select {
			case r := <-sweepCh:
				result = &r
			case <-time.After(time.Second):
				if time.Now().After(deadline) {
					fail("sweep did not finish within 15m")
				}
			}
		}
	}
	if !result.done || result.summary.Errors != 0 || result.rows != total || result.summary.Rows != total {
		fail("sweep finished dishonestly: done=%v rows=%d summary=%+v want %d rows, zero errors",
			result.done, result.rows, result.summary, total)
	}
	fmt.Printf("sweep complete: %d rows, zero errors, %v total\n",
		result.rows, time.Since(sweepStart).Round(time.Millisecond))

	// The sched metric families are on the worker scrape, keyed like
	// the healthz blocks the drill just read.
	resp, err := http.Get(sup.URLs()[0] + "/metrics")
	if err != nil {
		fail("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"simd_sched_queue_depth", `tenant="sweeper"`, `class="batch"`,
		"simd_sched_wait_seconds", "simd_sched_rejections_total", "simd_sched_dispatched_total",
	} {
		if !strings.Contains(string(metrics), want) {
			fail("worker metrics missing %s", want)
		}
	}
	// And the aggregated router scrape re-exposes them per shard.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		fail("router metrics: %v", err)
	}
	routerMetrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(routerMetrics), "simd_sched_queue_depth") {
		fail("aggregated router metrics missing simd_sched_queue_depth")
	}

	fmt.Printf("fairness smoke OK: interactive p99 %v under a saturating %d-variant sweep (bound %v), zero rejections, zero error rows\n",
		loadedP99.Round(time.Millisecond), total, bound.Round(time.Millisecond))
}

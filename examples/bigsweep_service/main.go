// Big-sweep drill: a 4-shard cluster completes a 10,000-variant RTL
// sweep through the checkpointed-sweep protocol while the drill
// throws the two faults the protocol exists for — a client that
// disconnects mid-stream and a worker SIGKILLed mid-sweep — and
// proves the promises hold:
//
//  1. an in-process single server computes the fault-free reference:
//     POST /sweep/analyze over the full grid, the byte-exact document
//     every later analysis must reproduce;
//
//  2. the cluster (4 real simd workers under the supervisor, one
//     deliberately slow with -workers 1 so work-stealing must kick
//     in) streams the same grid via POST /sweep. The client SIGKILLs
//     one shard after 1,000 rows, then hangs up after ~30% of the
//     stream, noting the X-Sweep-ID and its contiguous high-water
//     mark P;
//
//  3. GET /sweep/{id}/resume?after=P replays the rest: the union of
//     the two streams must be EXACTLY the grid — every index once,
//     no duplicates, no gaps, zero error rows — with overlapping
//     rows byte-identical;
//
//  4. at least one row was work-stolen (tagged owner->thief), and
//     stolen envelopes landed in the OWNER's store byte-identically
//     — a direct /run against the owner answers from cache with the
//     streamed bytes;
//
//  5. GET /sweep/{id} reports the sweep complete, and the post-hoc
//     POST /sweep/{id}/analyze — zero re-simulation — answers
//     byte-identical to the fault-free reference document.
//
//     go run ./examples/bigsweep_service [-simd PATH]
//
// With no -simd the drill builds the binary itself (`go build`). CI
// runs this as the big-sweep smoke; it exits nonzero on any violation.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/config"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/sweep"
)

const (
	totalVariants = 10_000
	killAfterRows = 1_000
	hangUpAfter   = 3_000
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bigsweep_service: "+format+"\n", args...)
	os.Exit(1)
}

// bigBase is deliberately tiny — two short generators on the 2-master
// platform — so ten thousand RTL simulations stay a smoke test, not a
// benchmark.
func bigBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "bigsweep/base",
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 2, Count: 4, Gap: 1},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 2, Period: 8, Count: 2},
		},
	}
}

// gridAxes is the 25 x 20 x 20 = 10,000-variant product in both the
// local (expansion) and wire forms; every value produces a distinct
// workload, so dedup collapses nothing and the variant count IS the
// Cartesian product.
func gridAxes() ([]sweep.Axis, []service.SweepAxis) {
	ints := func(n, from int) ([]sweep.Value, []any) {
		lv := make([]sweep.Value, n)
		wv := make([]any, n)
		for i := 0; i < n; i++ {
			lv[i] = sweep.Value{V: from + i}
			wv[i] = from + i
		}
		return lv, wv
	}
	u, uw := ints(25, 0)
	c, cw := ints(20, 1)
	w, ww := ints(20, 0)
	local := []sweep.Axis{
		{Param: sweep.ParamUrgencyThreshold, Values: u},
		{Param: sweep.ParamCount, Values: c},
		{Param: sweep.ParamWriteBufferDepth, Values: w},
	}
	wire := []service.SweepAxis{
		{Param: "urgency_threshold", Values: uw},
		{Param: "count", Values: cw},
		{Param: "write_buffer_depth", Values: ww},
	}
	return local, wire
}

func sweepRequest() service.SweepRequest {
	base := bigBase()
	_, wire := gridAxes()
	return service.SweepRequest{Base: &base, Name: "bigsweep/grid", Model: "rtl", Axes: wire}
}

func analyzeSelector() agg.Request {
	return agg.Request{
		Metric: "cycles", TopK: 5,
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "throughput", YObjective: agg.ObjectiveMax},
	}
}

// streamLine is one NDJSON line of a router sweep stream: a data row
// or (done set) the terminal summary.
type streamLine struct {
	shard.Row
	Done   bool `json:"done"`
	Rows   int  `json:"rows"`
	Errors int  `json:"errors"`
}

func main() {
	bin := ""
	if len(os.Args) > 2 && os.Args[1] == "-simd" {
		bin = os.Args[2]
	}
	tmp, err := os.MkdirTemp("", "bigsweep")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	if bin == "" {
		bin = filepath.Join(tmp, "simd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/simd").CombinedOutput()
		if err != nil {
			fail("building simd: %v\n%s", err, out)
		}
	}

	// 1. Fault-free reference, in-process.
	ref, err := service.New(service.Options{Workers: 8, StoreDir: filepath.Join(tmp, "ref")})
	if err != nil {
		fail("reference server: %v", err)
	}
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	defer ref.Close()
	refReq, err := json.Marshal(service.AnalyzeRequest{SweepRequest: sweepRequest(), Request: analyzeSelector()})
	if err != nil {
		fail("%v", err)
	}
	start := time.Now()
	resp, err := http.Post(refTS.URL+"/sweep/analyze", "application/json", bytes.NewReader(refReq))
	if err != nil {
		fail("reference analyze: %v", err)
	}
	refBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("reference analyze status %d: %s", resp.StatusCode, refBody)
	}
	refID := resp.Header.Get(service.SweepIDHeader)
	var refDoc agg.Analysis
	if err := json.Unmarshal(refBody, &refDoc); err != nil {
		fail("reference analyze body: %v", err)
	}
	if refDoc.Incomplete || refDoc.Analyzed != totalVariants || refDoc.Best == nil || refID == "" {
		fail("reference implausible (analyzed %d, incomplete %v, id %q)", refDoc.Analyzed, refDoc.Incomplete, refID)
	}
	fmt.Printf("fault-free reference: %d variants analyzed in %v, sweep id %s\n",
		refDoc.Analyzed, time.Since(start).Round(time.Millisecond), refID[:12])

	// The cluster: 4 real workers, shard 0 crippled to one worker so
	// its queue backs up and the others must steal from it.
	dir := filepath.Join(tmp, "cluster")
	sup, err := shard.SpawnWith(bin, 4, func(i int) []string {
		workers := "3"
		if i == 0 {
			workers = "1"
		}
		return []string{"-workers", workers, "-store", filepath.Join(dir, fmt.Sprintf("shard-%d", i))}
	}, shard.SpawnOptions{})
	if err != nil {
		fail("spawning cluster: %v", err)
	}
	defer sup.Stop()
	rt, err := shard.New(shard.Options{Backends: sup.URLs(), Supervisor: sup})
	if err != nil {
		fail("router: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Local routing table: variant spec and owner by grid index.
	local, _ := gridAxes()
	variants := sweep.MustExpand(sweep.Grid{Name: "bigsweep/grid", Base: bigBase(), Axes: local})
	if len(variants) != totalVariants {
		fail("grid expanded to %d variants, want %d — adjust the axes", len(variants), totalVariants)
	}
	byIndex := make(map[int]sweep.Variant, len(variants))
	perShard := make([]int, 4)
	for _, v := range variants {
		byIndex[v.Index] = v
		perShard[shard.Owner(v.Hash, 4)]++
	}
	// The SIGKILL victim: the busiest shard that is NOT the slow one
	// (stolen write-backs to shard 0 must survive to be checked).
	victim := 1
	for i := 2; i < 4; i++ {
		if perShard[i] > perShard[victim] {
			victim = i
		}
	}

	// 2. Stream the grid; SIGKILL the victim after 1,000 rows; hang up
	// after 3,000.
	sweepBuf, err := json.Marshal(sweepRequest())
	if err != nil {
		fail("%v", err)
	}
	start = time.Now()
	resp, err = http.Post(front.URL+"/sweep", "application/json", bytes.NewReader(sweepBuf))
	if err != nil {
		fail("sweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("sweep status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(service.SweepIDHeader)
	if id != refID {
		fail("cluster sweep id %q != reference id %q — tiers disagree on sweep identity", id, refID)
	}
	if v := resp.Header.Get("X-Sweep-Variants"); v != fmt.Sprint(totalVariants) {
		fail("X-Sweep-Variants %q, want %d", v, totalVariants)
	}

	victimPid := sup.Procs()[victim].Pid
	firstRows := map[int]shard.Row{}
	killed := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			fail("sweep stream line: %v", err)
		}
		if line.Done {
			fail("stream completed after %d rows — the drill hung up too late to matter", len(firstRows))
		}
		if line.Error != "" {
			fail("error row %d during the first stream: %s", line.Index, line.Error)
		}
		if _, dup := firstRows[line.Index]; dup {
			fail("index %d streamed twice in one stream", line.Index)
		}
		firstRows[line.Index] = line.Row
		if !killed && len(firstRows) >= killAfterRows {
			syscall.Kill(victimPid, syscall.SIGKILL)
			killed = true
			fmt.Printf("killed shard %d (pid %d, owns %d variants) after %d rows\n",
				victim, victimPid, perShard[victim], len(firstRows))
		}
		if len(firstRows) >= hangUpAfter {
			break
		}
	}
	if !killed || len(firstRows) < hangUpAfter {
		fail("stream ended early: %d rows (killed=%v)", len(firstRows), killed)
	}
	resp.Body.Close() // the client disconnect

	// P: the contiguous high-water mark a real client would resume from.
	p := -1
	for firstRows[p+1].Hash != "" || firstRows[p+1].Error != "" {
		p++
	}
	if p < 0 {
		fail("no contiguous prefix in %d rows", len(firstRows))
	}
	fmt.Printf("hung up after %d rows (%v); contiguous prefix P=%d\n",
		len(firstRows), time.Since(start).Round(time.Millisecond), p)

	// The router's abort-path checkpoint races our next request; wait
	// for the manifest to become visible.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(front.URL + "/sweep/" + id)
		if err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fail("manifest for %s never became visible after the disconnect", id)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// 3. Resume past P and drain to the terminal summary.
	start = time.Now()
	resp, err = http.Get(fmt.Sprintf("%s/sweep/%s/resume?after=%d", front.URL, id, p))
	if err != nil {
		fail("resume: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("resume status %d: %s", resp.StatusCode, body)
	}
	resumeRows := map[int]shard.Row{}
	var summary service.SweepSummary
	summary, done, err := service.DecodeSweepStream(resp.Body, func(lineBytes []byte) error {
		var row shard.Row
		if err := json.Unmarshal(lineBytes, &row); err != nil {
			return err
		}
		if row.Error != "" {
			fail("error row %d during resume: %s", row.Index, row.Error)
		}
		if row.Index <= p {
			fail("resume replayed index %d <= P=%d", row.Index, p)
		}
		if _, dup := resumeRows[row.Index]; dup {
			fail("index %d streamed twice in the resume", row.Index)
		}
		resumeRows[row.Index] = row
		return nil
	})
	resp.Body.Close()
	if err != nil {
		fail("resume stream: %v", err)
	}
	if !done {
		fail("resume stream truncated after %d rows", len(resumeRows))
	}
	if summary.Errors != 0 || summary.Rows != len(resumeRows) {
		fail("resume summary %+v vs %d rows", summary, len(resumeRows))
	}
	fmt.Printf("resume streamed %d rows in %v with a truthful terminal summary\n",
		len(resumeRows), time.Since(start).Round(time.Millisecond))

	// Union check: indices <= P from the first stream plus the resume
	// must be exactly the grid; overlapping rows byte-identical.
	union := make(map[int][]byte, totalVariants)
	for idx, row := range firstRows {
		if idx <= p {
			union[idx] = row.Result
		}
	}
	overlap := 0
	for idx, row := range resumeRows {
		if first, ok := firstRows[idx]; ok {
			overlap++
			if !bytes.Equal(first.Result, row.Result) {
				fail("index %d differs between the first stream and the resume", idx)
			}
		}
		if _, dup := union[idx]; dup {
			fail("index %d covered twice in the union", idx)
		}
		union[idx] = row.Result
	}
	if len(union) != totalVariants {
		fail("union covers %d of %d variants — gaps in the resumed sweep", len(union), totalVariants)
	}
	for i := 0; i < totalVariants; i++ {
		if _, ok := union[i]; !ok {
			fail("index %d missing from the union", i)
		}
		want := byIndex[i]
		if got := firstRows[i].Hash; got != "" && got != want.Hash {
			fail("index %d hash %s, locally expanded %s", i, got, want.Hash)
		}
	}
	fmt.Printf("union exact: %d indices, no gaps, no duplicates, %d overlapping rows byte-identical\n",
		totalVariants, overlap)

	// 4. Work-stealing: the concurrency skew must have produced stolen
	// rows, and their envelopes must sit in the owner's store.
	checkRows := func(rows map[int]shard.Row) (stolen int) {
		checked := 0
		for _, row := range rows {
			if row.Stolen == "" {
				continue
			}
			stolen++
			var owner, thief int
			if _, err := fmt.Sscanf(row.Stolen, "%d->%d", &owner, &thief); err != nil ||
				owner == thief || owner < 0 || owner > 3 || thief < 0 || thief > 3 {
				fail("malformed stolen tag %q on index %d", row.Stolen, row.Index)
			}
			if row.Shard != thief {
				fail("stolen row %d served by shard %d, tag says thief %d", row.Index, row.Shard, thief)
			}
			if owner == victim || checked >= 5 {
				continue // the victim's store may have died with it
			}
			checked++
			v := byIndex[row.Index]
			runBuf, _ := json.Marshal(map[string]any{"spec": v.Spec, "model": "rtl"})
			r, err := http.Post(sup.URLs()[owner]+"/run", "application/json", bytes.NewReader(runBuf))
			if err != nil {
				fail("owner %d replay: %v", owner, err)
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				fail("owner %d replay status %d: %s", owner, r.StatusCode, body)
			}
			if r.Header.Get("X-Cache") != "hit" {
				fail("stolen index %d absent from owner %d's store (X-Cache %q) — write-back lost",
					row.Index, owner, r.Header.Get("X-Cache"))
			}
			if !bytes.Equal(body, row.Result) {
				fail("stolen index %d: owner %d's stored envelope differs from the streamed row", row.Index, owner)
			}
		}
		return stolen
	}
	stolen := checkRows(firstRows) + checkRows(resumeRows)
	if stolen == 0 {
		fail("zero stolen rows across both streams — the 3:1 worker skew never forced a steal")
	}
	fmt.Printf("%d rows work-stolen; sampled write-backs present in owner stores byte-identically\n", stolen)

	// 5. The manifest says complete, and the stored analyze reproduces
	// the fault-free reference byte for byte with zero re-simulation.
	r, err := http.Get(front.URL + "/sweep/" + id)
	if err != nil {
		fail("status: %v", err)
	}
	statusBody, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		fail("status %d: %s", r.StatusCode, statusBody)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(statusBody, &st); err != nil {
		fail("status body: %v", err)
	}
	if !st.Complete || st.Total != totalVariants || st.Variants != totalVariants ||
		st.DoneCount != totalVariants || st.FailedCount != 0 {
		fail("status not complete: total %d variants %d done %d failed %d complete %v",
			st.Total, st.Variants, st.DoneCount, st.FailedCount, st.Complete)
	}

	selBuf, _ := json.Marshal(analyzeSelector())
	start = time.Now()
	r, err = http.Post(front.URL+"/sweep/"+id+"/analyze", "application/json", bytes.NewReader(selBuf))
	if err != nil {
		fail("stored analyze: %v", err)
	}
	gotBody, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		fail("stored analyze status %d: %s", r.StatusCode, gotBody)
	}
	if r.Header.Get(service.SweepIDHeader) != id {
		fail("stored analyze id header %q", r.Header.Get(service.SweepIDHeader))
	}
	if !bytes.Equal(gotBody, refBody) {
		fail("stored analyze differs from the fault-free reference:\n%.300s\n%.300s", gotBody, refBody)
	}
	fmt.Printf("GET /sweep/{id} complete; stored analyze byte-identical to the fault-free reference (%v, zero re-simulation)\n",
		time.Since(start).Round(time.Millisecond))

	fmt.Println("bigsweep smoke OK: 10k-variant sweep survived a mid-stream SIGKILL and a client disconnect — exact union on resume, work-stealing write-backs placed by ownership, post-hoc analysis byte-identical")
}

// Quickstart: assemble a three-master AHB+ platform, run the
// transaction-level model, and print the bus profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	// 1. Platform parameters: 32-bit AHB+, 8-deep write buffer, all
	// seven arbitration filters, request pipelining and the BI
	// side-band on, DDR-266 memory.
	params := config.Default(3)
	params.Masters[0].Name = "dma"
	params.Masters[1].Name = "cpu"
	params.Masters[2].Name = "video"
	params.Masters[2].RealTime = true    // video is a real-time master
	params.Masters[2].QoSObjective = 120 // max request-to-data latency

	// 2. Master workloads: a DMA engine streaming buffers, a CPU with
	// random accesses, and a periodic video stream.
	workload := core.Workload{
		Name:   "quickstart",
		Params: params,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x000000, Beats: 8, Count: 500, WriteEvery: 4},
				&traffic.Random{Seed: 7, Base: 0x080000, WindowBytes: 1 << 18,
					MaxBeats: 8, WriteFrac: 0.3, MeanGap: 10, Count: 500},
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 500},
			}
		},
	}

	// 3. Run the TLM with property checking and a short trace.
	tr := trace.New(8)
	chk := &check.Checker{}
	res := core.Run(workload, core.TLM, core.Options{Tracer: tr, Checker: chk})

	fmt.Printf("simulated %d cycles in %s (%.0f Kcycles/sec)\n\n",
		res.Cycles, res.Wall, res.KCyclesPerSec())
	res.Stats.Report(os.Stdout)
	fmt.Println()
	chk.Report(os.Stdout)
	fmt.Println("\nfirst transactions:")
	tr.WriteText(os.Stdout)

	if res.Stats.TotalViolations() == 0 {
		fmt.Println("\nvideo master met its QoS objective on every transaction")
	}
}

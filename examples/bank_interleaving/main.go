// Bank interleaving: two masters stream through different DDR banks.
// With the BI side-band enabled the arbiter announces each winner to
// the memory controller ahead of time, so the controller pre-activates
// the next bank while the current burst is still on the bus ("the next
// data can be served immediately right after the previous data is
// processed" — paper §2). Compare row-hit rate, utilization and total
// cycles with BI on and off.
//
//	go run ./examples/bank_interleaving
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	fmt.Println("bank interleaving via the BI next-transaction hint path")
	fmt.Println()
	fmt.Printf("%6s %12s %10s %12s %12s %10s\n",
		"BI", "cycles", "rowHit%", "hintActs", "hintPres", "util%")
	var on, off core.RunResult
	for _, bi := range []bool{true, false} {
		res := core.Run(core.InterleavingWorkload(bi, 600), core.TLM, core.Options{})
		if !res.Completed {
			panic("run did not complete")
		}
		fmt.Printf("%6v %12d %10.1f %12d %12d %10.1f\n",
			bi, uint64(res.Cycles), 100*res.Stats.DDR.HitRate(),
			res.Stats.DDR.HintActivates, res.Stats.DDR.HintPrecharges,
			100*res.Stats.Utilization())
		if bi {
			on = res
		} else {
			off = res
		}
	}
	fmt.Println()
	if on.Cycles <= off.Cycles {
		saved := off.Cycles - on.Cycles
		fmt.Printf("BI saved %d cycles (%.2f%%) on this workload by hiding row\n",
			uint64(saved), 100*float64(saved)/float64(off.Cycles))
		fmt.Println("activations behind in-flight bursts.")
	}
}

// Sharded service smoke drill: prove that `simd -shards 2` is
// indistinguishable from a single simd process — byte-identically —
// and that the cluster degrades and recovers the way the shard router
// promises. The drill:
//
//  1. starts a single-process simd and a 2-shard `simd -shards 2`
//     cluster, runs every library scenario through both, and requires
//     byte-identical bodies and X-Spec-Hash headers, with each
//     scenario's X-Shard matching the rendezvous owner computed
//     locally (placement is a pure function of the content hash);
//
//  2. runs the kill drill — TWICE, against a freshly salted cold grid
//     each round: stream an 8-variant RTL sweep through the cluster
//     and SIGKILL the busiest worker process mid-stream. Under
//     rendezvous failover the stream must still deliver all 8 rows
//     with ZERO error rows: the dead shard's remaining variants are
//     served by the survivor and tagged with their failover path, and
//     the stream ends with a truthful terminal summary — never a
//     hang, never a silent truncation. Each round then waits for the
//     supervisor to respawn the victim on its original port,
//     re-sweeps (every row owner-placed again, byte-identical to
//     what failover produced), and replays the grid all-hit from
//     BOTH shards' disk stores;
//
//  4. runs the same analysis grid through POST /sweep/analyze on the
//     single process and the 2-shard cluster and requires the two
//     JSON analysis documents to be byte-identical — aggregation is a
//     pure function of the (deterministic) result set, wherever and
//     in whatever order it was computed;
//
//  5. builds a 2-worker `-backends` cluster (no supervisor, so no
//     respawn), SIGKILLs one worker, and requires the analysis to
//     stay COMPLETE and byte-identical to the single-process
//     reference (the survivor covers the dead shard's variants, the
//     direct /run of a dead-owned spec carries X-Failover); then
//     SIGKILLs the second worker and requires the analysis to report
//     `incomplete` truthfully — zero analyzed, every variant in the
//     failed list naming "no live shard" — never a silently smaller
//     frontier.
//
//     go run ./examples/shard_service [-simd PATH]
//
// With no -simd the drill builds the binary itself (`go build`). CI
// runs this as the shard-mode smoke; it exits nonzero on any
// violation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/sweep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shard_service: "+format+"\n", args...)
	os.Exit(1)
}

// proc is one spawned simd process (single or supervised cluster).
type proc struct {
	cmd *exec.Cmd
	// url is the frontend base URL parsed from the serving banner.
	url string
	// shardPids maps shard index -> worker pid (cluster mode only).
	shardPids map[int]int
}

var (
	servingLine = regexp.MustCompile(`serving on (\S+)`)
	shardLine   = regexp.MustCompile(`shard (\d+) pid=(\d+) addr=(\S+)`)
)

// start launches simd with the given arguments and parses its startup
// banners: per-shard pid lines (cluster mode), then the serving line.
func start(bin string, wantShards int, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fail("starting %s: %v", bin, err)
	}
	p := &proc{cmd: cmd, shardPids: map[int]int{}}
	type parsed struct {
		url string
		err error
	}
	ch := make(chan parsed, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if m := shardLine.FindStringSubmatch(line); m != nil {
				idx, _ := strconv.Atoi(m[1])
				pid, _ := strconv.Atoi(m[2])
				p.shardPids[idx] = pid
				continue
			}
			if m := servingLine.FindStringSubmatch(line); m != nil {
				ch <- parsed{url: "http://" + m[1]}
				// Keep the pipe drained so the child never blocks.
				go func() {
					for sc.Scan() {
					}
				}()
				return
			}
		}
		ch <- parsed{err: fmt.Errorf("%s exited before announcing its address", bin)}
	}()
	select {
	case got := <-ch:
		if got.err != nil {
			fail("%v", got.err)
		}
		p.url = got.url
	case <-time.After(30 * time.Second):
		fail("%s: no serving banner within 30s", bin)
	}
	if len(p.shardPids) != wantShards {
		fail("%s announced %d shards, want %d", bin, len(p.shardPids), wantShards)
	}
	return p
}

// stop terminates the process tree gracefully (SIGTERM, then kill).
func (p *proc) stop() {
	if p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// postRun submits one /run request and returns status, headers, body.
func postRun(url string, req any) (int, http.Header, []byte) {
	buf, err := json.Marshal(req)
	if err != nil {
		fail("%v", err)
	}
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		fail("POST /run: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("reading /run response: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

// runSweep streams the grid and invokes onRow per data row as it
// arrives (the kill hook); it returns the data rows and the terminal
// summary, failing the drill if the summary line is missing.
func runSweep(url string, req []byte, onRow func(r shard.Row)) (rows []shard.Row, summary service.SweepSummary) {
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(req))
	if err != nil {
		fail("sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("sweep status %d: %s", resp.StatusCode, body)
	}
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var r shard.Row
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		rows = append(rows, r)
		if onRow != nil {
			onRow(r)
		}
		return nil
	})
	if err != nil {
		fail("sweep stream: %v", err)
	}
	if !done {
		fail("sweep stream ended without a terminal summary (%d rows) — TRUNCATED", len(rows))
	}
	if summary.Rows != len(rows) {
		fail("summary says %d rows, stream carried %d", summary.Rows, len(rows))
	}
	return rows, summary
}

// slowBase is the kill-drill workload: heavy enough per variant (RTL
// model) that a worker is reliably mid-simulation when the drill
// pulls the trigger.
func slowBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "smoke/slow",
		Params:      config.Default(2),
		MaxCycles:   50_000_000,
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 120_000, Gap: 2, WrapBytes: 0x40000},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 60_000, WrapBytes: 0x20000},
		},
	}
}

// scrapeMetrics fetches and parses an aggregated GET /metrics.
func scrapeMetrics(url string) []obs.Family {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		fail("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("metrics status %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		fail("parsing metrics: %v", err)
	}
	return fams
}

// findSeries returns the one matching sample value, or "".
func findSeries(fams []obs.Family, name string, labels ...string) string {
	vals := obs.Find(fams, name, labels...)
	if len(vals) != 1 {
		return ""
	}
	return vals[0]
}

// sumCounter totals a counter family across all its label sets.
func sumCounter(fams []obs.Family, name string) int {
	total := 0
	for _, v := range obs.Find(fams, name) {
		n, err := strconv.Atoi(v)
		if err != nil {
			fail("counter %s value %q: %v", name, v, err)
		}
		total += n
	}
	return total
}

// clusterHealth polls the router's aggregated healthz.
func clusterHealth(url string) (shard.ClusterHealth, error) {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return shard.ClusterHealth{}, err
	}
	defer resp.Body.Close()
	var h shard.ClusterHealth
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

func main() {
	bin := ""
	if len(os.Args) > 2 && os.Args[1] == "-simd" {
		bin = os.Args[2]
	}
	tmp, err := os.MkdirTemp("", "shardsmoke")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	if bin == "" {
		bin = filepath.Join(tmp, "simd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/simd").CombinedOutput()
		if err != nil {
			fail("building simd: %v\n%s", err, out)
		}
	}

	// 1. Single-process reference vs the 2-shard cluster, every
	// library scenario, byte-for-byte.
	single := start(bin, 0, "-addr", "127.0.0.1:0", "-workers", "2",
		"-store", filepath.Join(tmp, "single"))
	defer single.stop()
	// The router cache is disabled: this drill asserts BACKEND-tier
	// cache dispositions (X-Cache: hit from the worker's store), which
	// the router-side cache would otherwise answer first.
	cluster := start(bin, 2, "-addr", "127.0.0.1:0", "-shards", "2", "-workers", "1",
		"-router-cache-bytes", "0",
		"-store", filepath.Join(tmp, "cluster"))
	defer cluster.stop()

	h, err := clusterHealth(cluster.url)
	if err != nil || !h.OK || len(h.Shards) != 2 || h.Workers != 2 {
		fail("cluster health %+v (err %v)", h, err)
	}
	fmt.Printf("cluster up: 2 shards (pids %d, %d), %d workers total\n",
		cluster.shardPids[0], cluster.shardPids[1], h.Workers)

	_, scenarioByName := service.ScenarioLibrary()
	checked := 0
	for name, sp := range scenarioByName {
		req := map[string]any{"scenario": name, "model": "tl"}
		st1, h1, b1 := postRun(single.url, req)
		st2, h2, b2 := postRun(cluster.url, req)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			fail("scenario %s: statuses %d/%d: %s / %s", name, st1, st2, b1, b2)
		}
		if !bytes.Equal(b1, b2) {
			fail("scenario %s: sharded body differs from single-process:\n%s\n%s", name, b1, b2)
		}
		if h1.Get("X-Spec-Hash") != h2.Get("X-Spec-Hash") {
			fail("scenario %s: hash headers differ", name)
		}
		hash, _ := sp.Hash()
		if want := strconv.Itoa(shard.Owner(hash, 2)); h2.Get("X-Shard") != want {
			fail("scenario %s placed on shard %s, rendezvous owner is %s", name, h2.Get("X-Shard"), want)
		}
		checked++
	}
	fmt.Printf("%d library scenarios byte-identical across single-process and 2-shard mode\n", checked)

	// Request tracing end to end: a rid sent to the router must come
	// back in the BACKEND's error body — the router forwards backend
	// bodies verbatim, so seeing it there proves the ID crossed the
	// proxy hop into the worker. An empty master list passes the
	// router's routing checks (it hashes fine) but fails the backend's
	// strict validation, so the 400 below is authored by the worker.
	invalid := spec.Spec{SpecVersion: spec.Version, Name: "smoke/invalid", Params: config.Default(2)}
	ridBody, _ := json.Marshal(map[string]any{"spec": invalid, "model": "tl"})
	ridReq, _ := http.NewRequest(http.MethodPost, cluster.url+"/run", bytes.NewReader(ridBody))
	ridReq.Header.Set("Content-Type", "application/json")
	ridReq.Header.Set("X-Request-ID", "shard-smoke-rid-1")
	ridResp, err := http.DefaultClient.Do(ridReq)
	if err != nil {
		fail("traced request: %v", err)
	}
	ridRespBody, _ := io.ReadAll(ridResp.Body)
	ridResp.Body.Close()
	if ridResp.StatusCode != http.StatusBadRequest {
		fail("traced request status %d: %s", ridResp.StatusCode, ridRespBody)
	}
	if got := ridResp.Header.Get("X-Request-ID"); got != "shard-smoke-rid-1" {
		fail("router did not echo the request ID: %q", got)
	}
	var ridErr struct {
		RequestID string `json:"request_id"`
	}
	if json.Unmarshal(ridRespBody, &ridErr) != nil || ridErr.RequestID != "shard-smoke-rid-1" {
		fail("backend error body lost the request ID: %s", ridRespBody)
	}
	fmt.Println("request ID propagates router -> worker and back (echoed header + backend error body)")

	// Timing breakdown survives the proxy hop on a cold run.
	tb := fastBase()
	tb.Name = "smoke/timing"
	_, timingHdr, _ := postRun(cluster.url, map[string]any{"spec": tb, "model": "tl"})
	if tm := timingHdr.Get("X-Timing"); !strings.Contains(tm, "simulate=") {
		fail("X-Timing not forwarded through the router: %q", tm)
	}

	// 2. The kill drill, twice: the second round proves the respawned
	// worker is a first-class shard again — it serves, fails over and
	// revives exactly like the original process did.
	for round := 1; round <= 2; round++ {
		killDrill(cluster, round)
	}

	// 3. Cluster observability after the drills: one router scrape
	// carries the whole story — both shards scrapeable under their
	// labels, the failovers the kills forced, and the supervisor
	// respawns surfaced as restart counters (the counter-reset warning
	// for anyone summing worker series).
	fams := scrapeMetrics(cluster.url)
	for i := 0; i < 2; i++ {
		label := strconv.Itoa(i)
		if v := findSeries(fams, "simd_shard_up", "shard", label); v != "1" {
			fail("simd_shard_up{shard=%s} = %q after respawn", label, v)
		}
		if v := findSeries(fams, "simd_jobs_total", "shard", label); v == "" {
			fail("shard %s series missing from the aggregated scrape", label)
		}
	}
	if n := sumCounter(fams, "simd_router_failovers_total"); n == 0 {
		fail("kill drills produced no simd_router_failovers_total increments")
	}
	if n := sumCounter(fams, "simd_router_shard_restarts_total"); n < 2 {
		fail("restart counter %d after two kill drills, want >= 2", n)
	}
	h2, err := clusterHealth(cluster.url)
	if err != nil || h2.Restarts < 2 {
		fail("healthz restarts %d (err %v), want >= 2", h2.Restarts, err)
	}
	fmt.Printf("metrics: failovers=%d restarts=%d, both shards scrapeable under shard labels\n",
		sumCounter(fams, "simd_router_failovers_total"), sumCounter(fams, "simd_router_shard_restarts_total"))

	// 4. /sweep/analyze: the single process and the 2-shard cluster
	// must produce byte-identical analysis documents for the same grid
	// — the tentpole contract of router-side aggregation. A fast TL
	// grid keeps this step cheap; it is cold on both deployments, so
	// the equality also covers completion-order independence.
	fastSpec := fastBase()
	analyzeReq := service.AnalyzeRequest{
		SweepRequest: service.SweepRequest{
			Base: &fastSpec, Name: "smoke/analyze", Model: "tl",
			Axes: []service.SweepAxis{
				{Param: "write_buffer_depth", Values: []any{0, 2, 8, 16}},
				{Param: "bi_enabled", Values: []any{true, false}},
			},
		},
		Request: agg.Request{
			Metric: "cycles", TopK: 3,
			Frontier: &agg.FrontierSpec{X: "cycles", Y: "throughput", YObjective: agg.ObjectiveMax},
		},
	}
	_, body1 := postAnalyze(single.url, analyzeReq)
	doc2, body2 := postAnalyze(cluster.url, analyzeReq)
	if !bytes.Equal(body1, body2) {
		fail("analysis documents differ between single-process and 2-shard:\n%s\n%s", body1, body2)
	}
	if doc2.Incomplete || doc2.Analyzed != 8 || doc2.Best == nil || doc2.Frontier == nil || len(doc2.Frontier.Points) == 0 {
		fail("healthy analysis implausible: %s", body2)
	}
	fmt.Printf("analysis byte-identical across deployments: best %s=%g at %s, %d frontier points\n",
		doc2.Metric, doc2.Best.Value, doc2.Best.Name, len(doc2.Frontier.Points))

	// 5. Failover honesty on a -backends cluster (externally managed
	// workers, no supervisor, no respawn). Losing ONE worker must not
	// degrade anything: the survivor covers the dead shard's variants
	// and the analysis stays complete and byte-identical to the
	// single-process reference. Losing BOTH workers must be reported
	// truthfully — never a silently smaller frontier.
	w1 := start(bin, 0, "-addr", "127.0.0.1:0", "-workers", "1")
	defer w1.stop()
	w2 := start(bin, 0, "-addr", "127.0.0.1:0", "-workers", "1")
	defer w2.stop()
	// Cache off here too: with it on, the analyze below would warm the
	// router's own cache and the all-dead analysis would be served
	// complete from it — this phase tests backend-tier honesty.
	router := start(bin, 0, "-addr", "127.0.0.1:0", "-router-cache-bytes", "0",
		"-backends", w1.url+","+w2.url)
	defer router.stop()

	// Verify the analysis grid actually spans both shards, and keep a
	// spec the doomed shard owns for the direct-/run failover probe.
	analyzeVariants := sweep.MustExpand(sweep.Grid{
		Name: "smoke/analyze", Base: fastBase(),
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 8}, {V: 16}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		},
	})
	deadOwned := 0
	var deadSpec *spec.Spec
	for _, v := range analyzeVariants {
		if shard.Owner(v.Hash, 2) == 1 {
			deadOwned++
			if deadSpec == nil {
				sp := v.Spec
				deadSpec = &sp
			}
		}
	}
	if deadOwned == 0 || deadOwned == len(analyzeVariants) {
		fail("degenerate analyze partition: shard 1 owns %d of %d", deadOwned, len(analyzeVariants))
	}
	w2.cmd.Process.Kill()
	w2.cmd.Wait()

	// A dead-owned spec still runs — served by the survivor, with the
	// failover path announced in the response headers.
	st, hdr, runBody := postRun(router.url, map[string]any{"spec": deadSpec, "model": "tl"})
	if st != http.StatusOK {
		fail("dead-owned /run after single loss: %d %s", st, runBody)
	}
	if hdr.Get("X-Shard") != "0" || hdr.Get("X-Failover") != "1->0" {
		fail("dead-owned /run shard %q failover %q, want shard 0 via 1->0", hdr.Get("X-Shard"), hdr.Get("X-Failover"))
	}

	oneDoc, oneBody := postAnalyze(router.url, analyzeReq)
	if oneDoc.Incomplete || oneDoc.Analyzed != 8 || len(oneDoc.Failed) != 0 {
		fail("single-loss analysis degraded: %s", oneBody)
	}
	if !bytes.Equal(oneBody, body1) {
		fail("single-loss analysis differs from the single-process reference:\n%s\n%s", oneBody, body1)
	}
	fmt.Printf("single worker lost: /run fails over (X-Failover 1->0), analysis still complete and byte-identical\n")

	// Both workers down: nothing left to fail over to, and the
	// analysis must say exactly that.
	w1.cmd.Process.Kill()
	w1.cmd.Wait()

	deadDoc, deadBody := postAnalyze(router.url, analyzeReq)
	if !deadDoc.Incomplete {
		fail("all-dead analysis not marked incomplete: %s", deadBody)
	}
	if deadDoc.Variants != 8 || deadDoc.Analyzed != 0 || len(deadDoc.Failed) != 8 {
		fail("all-dead analysis variants/analyzed/failed %d/%d/%d, want 8/0/8: %s",
			deadDoc.Variants, deadDoc.Analyzed, len(deadDoc.Failed), deadBody)
	}
	for _, f := range deadDoc.Failed {
		if !strings.Contains(f.Error, "no live shard") {
			fail("all-dead failure %+v does not name the exhausted cluster", f)
		}
	}
	fmt.Printf("all workers lost: analysis truthful — incomplete=true, 0/%d analyzed, %d explicit failures\n",
		deadDoc.Variants, len(deadDoc.Failed))

	fmt.Println("smoke OK: 2-shard cluster byte-identical (rows AND analysis), double kill drill survived with zero error rows, respawn + replay + failover/incompleteness honesty verified")
}

// killDrill streams one cold 8-variant RTL sweep through the cluster
// and SIGKILLs the busiest shard after its first successful row. The
// failover contract under test: all 8 rows arrive with ZERO errors,
// dead-owned rows are served by the survivor and tagged with their
// failover path, and once the supervisor revives the victim the grid
// recomputes owner-placed — byte-identical to what failover produced
// — and replays all-hit from both shards' disk stores. The round
// number salts the workload so every drill starts cold.
func killDrill(cluster *proc, round int) {
	base := slowBase()
	// New hashes each round: same shape, one extra beat of work.
	base.Masters[0].Count += round

	variants := sweep.MustExpand(sweep.Grid{
		Name: "smoke/grid", Base: base,
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 8}, {V: 16}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		},
	})
	owners := map[string]int{}
	perShard := []int{0, 0}
	for _, v := range variants {
		o := shard.Owner(v.Hash, 2)
		owners[v.Hash] = o
		perShard[o]++
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		fail("round %d: degenerate partition %v; re-salt the grid", round, perShard)
	}
	victim := 0
	if perShard[1] > perShard[0] {
		victim = 1
	}
	survivor := 1 - victim

	// The victim's CURRENT pid comes from healthz, not the startup
	// banner: after round 1's respawn the banner pid is stale.
	h, err := clusterHealth(cluster.url)
	if err != nil || !h.OK {
		fail("round %d: cluster unhealthy before the drill: %+v (err %v)", round, h, err)
	}
	if h.Shards[victim].Proc == nil {
		fail("round %d: healthz carries no process status for shard %d", round, victim)
	}
	victimPid := h.Shards[victim].Proc.Pid
	priorRespawns := h.Shards[victim].Proc.Respawns
	fmt.Printf("kill drill %d: sweeping 8 RTL variants (shard split %v); killing shard %d (pid %d) after its first row\n",
		round, perShard, victim, victimPid)

	gridReq, _ := json.Marshal(map[string]any{
		"base": base, "name": "smoke/grid", "model": "rtl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 8, 16}},
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
	})
	killed := false
	rows, summary := runSweep(cluster.url, gridReq, func(r shard.Row) {
		if !killed && r.Shard == victim && r.Error == "" {
			syscall.Kill(victimPid, syscall.SIGKILL)
			killed = true
			fmt.Printf("  killed shard %d after row %s\n", victim, r.Name)
		}
	})
	if !killed {
		fail("round %d: victim shard produced no successful row to trigger on", round)
	}
	if len(rows) != 8 {
		fail("round %d: kill sweep produced %d rows, want 8", round, len(rows))
	}
	byHash := map[string][]byte{}
	failovers, stolen := 0, 0
	for _, r := range rows {
		if r.Error != "" {
			fail("round %d: error row %s under single-shard loss (%s) — failover must cover a dead owner", round, r.Name, r.Error)
		}
		byHash[r.Hash] = r.Result
		if r.Stolen != "" {
			// Work-stealing: an idle shard drained a deep owner queue.
			// Legitimate off-owner service, but the tag must be honest.
			stolen++
			var o, th int
			if _, err := fmt.Sscanf(r.Stolen, "%d->%d", &o, &th); err != nil || o == th {
				fail("round %d: row %s carries malformed stolen tag %q", round, r.Name, r.Stolen)
			}
			if o != owners[r.Hash] || th != r.Shard {
				fail("round %d: stolen row %s tag %q disagrees with owner %d / serving shard %d", round, r.Name, r.Stolen, owners[r.Hash], r.Shard)
			}
			continue
		}
		if r.Failover == "" {
			// Owner-served: before the kill, or after the breaker let
			// the revived victim back in mid-sweep.
			if owners[r.Hash] != r.Shard {
				fail("round %d: row %s on shard %d without a failover tag, owner %d", round, r.Name, r.Shard, owners[r.Hash])
			}
			continue
		}
		failovers++
		if owners[r.Hash] != victim || r.Shard != survivor {
			fail("round %d: failover row %s owner %d served by shard %d (victim %d)", round, r.Name, owners[r.Hash], r.Shard, victim)
		}
		if want := fmt.Sprintf("%d->%d", victim, survivor); r.Failover != want {
			fail("round %d: row %s failover %q, want %q", round, r.Name, r.Failover, want)
		}
	}
	if failovers == 0 {
		fail("round %d: no row failed over — the drill never exercised shard death", round)
	}
	if summary.Errors != 0 {
		fail("round %d: terminal summary reports %d errors, stream carried none", round, summary.Errors)
	}
	fmt.Printf("  stream complete despite the kill: 8 rows, 0 errors, %d failover rows (%d->%d), %d stolen rows, truthful summary\n",
		failovers, victim, survivor, stolen)

	// The supervisor revives the victim on its original port; wait
	// until the router's breaker trusts it again so the re-sweep is
	// owner-placed throughout.
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := clusterHealth(cluster.url)
		if err == nil && h.OK && h.Shards[victim].Proc != nil &&
			h.Shards[victim].Proc.Pid != victimPid &&
			h.Shards[victim].Proc.Respawns > priorRespawns &&
			h.Shards[victim].Breaker != "open" {
			break
		}
		if time.Now().After(deadline) {
			fail("round %d: shard %d never respawned cleanly: %+v (err %v)", round, victim, h, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("  shard %d respawned (respawns > %d), breaker closed\n", victim, priorRespawns)

	// Re-sweep: every row owner-placed again. Dead-owned rows that
	// failed over were never written through to the victim, so the
	// revived victim recomputes them — and must land on exactly the
	// bytes the survivor produced under failover.
	recomputed, summary2 := runSweep(cluster.url, gridReq, nil)
	if len(recomputed) != 8 || summary2.Errors != 0 {
		fail("round %d: post-respawn sweep: %d rows, %d errors", round, len(recomputed), summary2.Errors)
	}
	for _, r := range recomputed {
		if r.Stolen != "" {
			// The revived victim recomputes cold: its queue can run deep
			// enough for the survivor to steal a genuine miss. Valid —
			// the write-back still lands the bytes on the owner.
			var o, th int
			if _, err := fmt.Sscanf(r.Stolen, "%d->%d", &o, &th); err != nil || o == th || o != owners[r.Hash] || th != r.Shard {
				fail("round %d: post-respawn stolen row %s tag %q disagrees with owner %d / shard %d", round, r.Name, r.Stolen, owners[r.Hash], r.Shard)
			}
		} else if r.Failover != "" || r.Shard != owners[r.Hash] {
			fail("round %d: post-respawn row %s on shard %d (failover %q), owner %d", round, r.Name, r.Shard, r.Failover, owners[r.Hash])
		}
		if !bytes.Equal(r.Result, byHash[r.Hash]) {
			fail("round %d: row %s recomputed after respawn differs from its failover result", round, r.Name)
		}
	}

	// Replay: the whole grid is now a disk hit on BOTH shards.
	replayed, summary3 := runSweep(cluster.url, gridReq, nil)
	if len(replayed) != 8 || summary3.Errors != 0 {
		fail("round %d: replay sweep: %d rows, %d errors", round, len(replayed), summary3.Errors)
	}
	hitsByShard := []int{0, 0}
	for _, r := range replayed {
		if r.Cache != "hit" {
			fail("round %d: replay row %s disposition %q, want hit", round, r.Name, r.Cache)
		}
		if !bytes.Equal(r.Result, byHash[r.Hash]) {
			fail("round %d: replay row %s differs from its recomputation", round, r.Name)
		}
		hitsByShard[r.Shard]++
	}
	if hitsByShard[0] == 0 || hitsByShard[1] == 0 {
		fail("round %d: replay hits came from one shard only: %v", round, hitsByShard)
	}
	fmt.Printf("  full grid replays all-hit from both stores (%d + %d rows)\n", hitsByShard[0], hitsByShard[1])
}

// fastBase is the analysis-drill workload: the same shape as slowBase
// but light enough that an 8-variant TL grid is near-instant.
func fastBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "smoke/fast",
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 300, Gap: 2, WrapBytes: 0x40000},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 150, WrapBytes: 0x20000},
		},
	}
}

// postAnalyze submits a /sweep/analyze request through the typed
// client — the same exported API frontends use — returning the
// decoded document plus the raw bytes for byte-identity checks.
func postAnalyze(url string, req service.AnalyzeRequest) (agg.Analysis, []byte) {
	client := &service.Client{Base: url}
	doc, body, err := client.AnalyzeSweep(context.Background(), req)
	if err != nil {
		fail("analyze against %s: %v (%s)", url, err, body)
	}
	return *doc, body
}

// Write-buffer study: sweep the AHB+ write-buffer depth under a
// write-heavy workload and watch the tradeoff the paper's design
// embodies — posted writes complete at bus speed (master-perceived
// write latency collapses), while the buffer drains as a pseudo-master
// whenever arbitration lets it (paper §3.3).
//
//	go run ./examples/writebuffer_study
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	fmt.Println("write buffer depth sweep (saturating write-heavy workload)")
	fmt.Println()
	fmt.Printf("%6s %10s %14s %14s %12s %12s %10s\n",
		"depth", "cycles", "writeLat(m1)", "readLat(m0)", "posted", "fullStalls", "wbPeak")
	for _, depth := range core.AblationWriteBufferDepths() {
		res := core.Run(core.SaturatingWorkload(depth, 400), core.TLM, core.Options{})
		if !res.Completed {
			panic("run did not complete")
		}
		st := res.Stats
		fmt.Printf("%6d %10d %14.1f %14.1f %12d %12d %10d\n",
			depth, uint64(res.Cycles),
			st.Masters[1].MeanLatency(), // all-writes master
			st.Masters[0].MeanLatency(), // all-reads master
			st.WBPosted, st.WBFullStalls, st.WBPeak)
	}
	fmt.Println()
	fmt.Println("depth 0 sends every write through the full DDR path; any nonzero")
	fmt.Println("depth lets writes post at bus speed. Under saturation the drain")
	fmt.Println("traffic costs total cycles — the win is the master-perceived write")
	fmt.Println("latency, which is what stalls a CPU or a producer IP.")
}

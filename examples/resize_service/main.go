// Resize drill: drive a supervised cluster through a live grow and a
// live drain under load, and prove elasticity costs nothing the
// serving layer promised:
//
//  1. computes the fault-free reference: an in-process single server
//     runs a 64-variant grid through /sweep/analyze; that JSON
//     document is the byte-exact truth every later analysis must
//     reproduce, resizes or no resizes;
//
//  2. spawns TWO real simd worker processes under the shard
//     supervisor behind an in-process router, starts streaming the
//     64-variant sweep, and — after the first row arrives — POSTs
//     /admin/shards {"count":2} to grow the cluster to four workers
//     MID-SWEEP: the stream must finish with zero error rows and a
//     truthful summary, the topology must land at epoch 2 with four
//     members, and a post-grow /sweep/analyze must answer
//     byte-identically to the reference;
//
//  3. re-sweeps after the grow (the new members now own their
//     rendezvous slices — rows served by shards 2 and 3 prove the
//     admission was real, and re-owned variants recompute to the
//     same bytes);
//
//  4. drains shard 1 while four clients hammer its warm keyspace
//     with /run repeats: POST /admin/shards/1/drain must migrate
//     every envelope to the survivors BEFORE the membership swap, so
//     the hammering clients see zero failures and zero cache misses
//     throughout, and the supervisor must retire the worker process
//     (state "retired", never respawned);
//
//  5. replays the full sweep on the shrunk cluster: zero error rows,
//     no row served by the retired ID, EVERY row a warm "hit" — the
//     drained shard's keys answered from their new owners' stores —
//     and a final /sweep/{id}/analyze byte-identical to the
//     reference with zero re-simulation.
//
//     go run ./examples/resize_service [-simd PATH]
//
// With no -simd the drill builds the binary itself (`go build`). CI
// runs this as the resize smoke; it exits nonzero on any violation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/config"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/spec"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "resize_service: "+format+"\n", args...)
	os.Exit(1)
}

// resizeBase is the drill workload: TL-model and small, so the whole
// drill — two full sweeps, a grow, a drain under load — stays a smoke.
func resizeBase() spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        "resize/base",
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 600, Gap: 2, WrapBytes: 0x40000},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 300, WrapBytes: 0x20000},
		},
	}
}

func sweepRequest() service.SweepRequest {
	base := resizeBase()
	return service.SweepRequest{
		Base: &base, Name: "resize/grid", Model: "tl",
		Axes: []service.SweepAxis{
			{Param: "write_buffer_depth", Values: []any{0, 2, 4, 8}},
			{Param: "bi_enabled", Values: []any{true, false}},
			{Param: "closed_page", Values: []any{true, false}},
			{Param: "pipelining", Values: []any{true, false}},
			{Param: "filters", Values: []any{"all", "rr-only"}},
		},
	}
}

func analyzeRequest() service.AnalyzeRequest {
	return service.AnalyzeRequest{
		SweepRequest: sweepRequest(),
		Request: agg.Request{
			Metric: "cycles", TopK: 5,
			Frontier: &agg.FrontierSpec{X: "cycles", Y: "throughput", YObjective: agg.ObjectiveMax},
		},
	}
}

// runSweep streams the grid, invoking onRow per data row as it
// arrives; fails the drill on truncation or a lying summary.
func runSweep(url string, onRow func(r shard.Row)) (rows []shard.Row, summary service.SweepSummary) {
	req, err := json.Marshal(sweepRequest())
	if err != nil {
		fail("%v", err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(req))
	if err != nil {
		fail("sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("sweep status %d: %s", resp.StatusCode, body)
	}
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var r shard.Row
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		rows = append(rows, r)
		if onRow != nil {
			onRow(r)
		}
		return nil
	})
	if err != nil {
		fail("sweep stream: %v", err)
	}
	if !done {
		fail("sweep stream ended without a terminal summary (%d rows) — TRUNCATED", len(rows))
	}
	if summary.Rows != len(rows) {
		fail("summary says %d rows, stream carried %d", summary.Rows, len(rows))
	}
	return rows, summary
}

func postAnalyze(url string) []byte {
	client := &service.Client{Base: url}
	doc, body, err := client.AnalyzeSweep(context.Background(), analyzeRequest())
	if err != nil {
		fail("analyze against %s: %v (%s)", url, err, body)
	}
	if doc.Incomplete {
		fail("analysis incomplete: %s", body)
	}
	return body
}

func topology(front string) shard.Topology {
	resp, err := http.Get(front + "/admin/shards")
	if err != nil {
		fail("topology: %v", err)
	}
	defer resp.Body.Close()
	var top shard.Topology
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		fail("topology: %v", err)
	}
	return top
}

func postAdmin(front, path string, body any) (int, []byte) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			fail("%v", err)
		}
		rd = bytes.NewReader(buf)
	}
	resp, err := http.Post(front+path, "application/json", rd)
	if err != nil {
		fail("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func main() {
	bin := ""
	if len(os.Args) > 2 && os.Args[1] == "-simd" {
		bin = os.Args[2]
	}
	tmp, err := os.MkdirTemp("", "resizesmoke")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	if bin == "" {
		bin = filepath.Join(tmp, "simd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/simd").CombinedOutput()
		if err != nil {
			fail("building simd: %v\n%s", err, out)
		}
	}

	// 1. The fault-free reference analysis, computed in-process.
	ref, err := service.New(service.Options{Workers: 4, StoreDir: filepath.Join(tmp, "ref")})
	if err != nil {
		fail("reference server: %v", err)
	}
	refTS := httptest.NewServer(ref.Handler())
	refBody := postAnalyze(refTS.URL)
	refTS.Close()
	ref.Close()
	fmt.Printf("fault-free reference: %d analysis bytes\n", len(refBody))

	// The same grid, expanded locally: the row-count truth and the
	// source of warm /run bodies for the drain-under-load phase.
	variants, err := service.ExpandSweepRequest(sweepRequest(), nil, 0)
	if err != nil {
		fail("expanding grid locally: %v", err)
	}
	specByName := make(map[string]spec.Spec, len(variants))
	for _, v := range variants {
		specByName[v.Spec.Name] = v.Spec
	}

	// 2. The elastic cluster: two supervised workers to start. The
	// argsFor closure keys store directories by STABLE shard ID, so
	// workers admitted later get their own fresh stores.
	dir := filepath.Join(tmp, "cluster")
	sup, err := shard.Spawn(bin, 2, func(i int) []string {
		return []string{"-workers", "1", "-store", filepath.Join(dir, fmt.Sprintf("shard-%d", i))}
	}, os.Stderr)
	if err != nil {
		fail("spawning cluster: %v", err)
	}
	defer sup.Stop()
	rt, err := shard.New(shard.Options{Backends: sup.URLs(), Supervisor: sup})
	if err != nil {
		fail("router: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	if top := topology(front.URL); top.Epoch != 1 || len(top.Members) != 2 {
		fail("boot topology: %+v", top)
	}

	// Grow 2→4 mid-sweep: fire the admin call from the row callback so
	// the membership swap lands while the stream is in flight.
	var grew sync.Once
	var growErr atomic.Value
	rows, summary := runSweep(front.URL, func(r shard.Row) {
		grew.Do(func() {
			status, body := postAdmin(front.URL, "/admin/shards", map[string]any{"count": 2})
			if status != http.StatusOK {
				growErr.Store(fmt.Sprintf("grow status %d: %s", status, body))
			}
		})
	})
	if e := growErr.Load(); e != nil {
		fail("%s", e)
	}
	if summary.Errors != 0 {
		fail("mid-grow sweep carried %d error rows, want 0", summary.Errors)
	}
	if len(rows) != len(variants) {
		fail("mid-grow sweep carried %d rows, want %d", len(rows), len(variants))
	}
	top := topology(front.URL)
	if top.Epoch != 2 || len(top.Members) != 4 {
		fail("post-grow topology: %+v", top)
	}
	fmt.Printf("grew 2→4 mid-sweep: %d rows, 0 errors, epoch %d\n", len(rows), top.Epoch)
	if body := postAnalyze(front.URL); !bytes.Equal(body, refBody) {
		fail("post-grow analysis differs from the fault-free reference:\n%s\n%s", body, refBody)
	}

	// 3. The admission was real: a fresh sweep routes re-owned
	// variants to the new members.
	rows, summary = runSweep(front.URL, nil)
	if summary.Errors != 0 {
		fail("post-grow sweep carried %d error rows", summary.Errors)
	}
	newServed := 0
	for _, r := range rows {
		if r.Shard >= 2 {
			newServed++
		}
	}
	if newServed == 0 {
		fail("no row served by an admitted shard — the grow changed nothing")
	}
	fmt.Printf("post-grow sweep: %d/%d rows served by the new members\n", newServed, len(rows))

	// 4. Drain shard 1 under load: four clients hammer its (warm)
	// keyspace; nobody may see a failure or a recompute. The warm
	// request bodies come from the local grid expansion, matched to
	// rows by variant name.
	warm := make([][]byte, 0, len(rows))
	for _, r := range rows {
		if r.Shard != 1 || r.Error != "" {
			continue
		}
		sp, ok := specByName[r.Name]
		if !ok {
			fail("row %s has no local grid counterpart", r.Name)
		}
		req, err := json.Marshal(service.RunRequest{Spec: &sp, Model: "tl"})
		if err != nil {
			fail("%v", err)
		}
		warm = append(warm, req)
	}
	if len(warm) == 0 {
		fail("shard 1 served nothing — degenerate drill")
	}
	stop := make(chan struct{})
	var misses, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(front.URL+"/run", "application/json", bytes.NewReader(warm[(g+i)%len(warm)]))
				if err != nil {
					failures.Add(1)
					continue
				}
				cache := resp.Header.Get("X-Cache")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				} else if cache == "miss" {
					misses.Add(1)
				}
			}
		}(g)
	}
	status, body := postAdmin(front.URL, "/admin/shards/1/drain", nil)
	close(stop)
	wg.Wait()
	if status != http.StatusOK {
		fail("drain status %d: %s", status, body)
	}
	var report shard.DrainReport
	if err := json.Unmarshal(body, &report); err != nil {
		fail("drain report: %v", err)
	}
	if report.Drained != 1 || report.Moved == 0 {
		fail("drain report implausible: %+v", report)
	}
	if n := failures.Load(); n != 0 {
		fail("%d /run failures during the drain", n)
	}
	if n := misses.Load(); n != 0 {
		fail("%d cache misses during the drain — a warm key went cold", n)
	}
	top = topology(front.URL)
	if top.Epoch != 3 || len(top.Members) != 3 {
		fail("post-drain topology: %+v", top)
	}
	fmt.Printf("drained shard 1 under load: moved %d envelopes, 0 failures, 0 misses, epoch %d\n",
		report.Moved, top.Epoch)

	// The supervisor retired the worker — and never respawns it.
	retired := false
	deadline := time.Now().Add(10 * time.Second)
	for !retired && time.Now().Before(deadline) {
		for _, p := range sup.Status() {
			if p.Index == 1 && p.State == shard.ProcRetired {
				retired = true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !retired {
		fail("supervisor never marked shard 1 retired: %+v", sup.Status())
	}

	// 5. The drained keyspace replays warm from its new owners.
	rows, summary = runSweep(front.URL, nil)
	if summary.Errors != 0 {
		fail("post-drain sweep carried %d error rows", summary.Errors)
	}
	for _, r := range rows {
		if r.Shard == 1 {
			fail("row %s served by the drained shard", r.Name)
		}
		if r.Cache != "hit" {
			fail("post-drain row %s disposition %q, want a warm hit from its new owner", r.Name, r.Cache)
		}
	}
	if body := postAnalyze(front.URL); !bytes.Equal(body, refBody) {
		fail("post-drain analysis differs from the fault-free reference")
	}
	fmt.Printf("post-drain replay: %d rows, all warm hits from the surviving members\n", len(rows))
	fmt.Println("resize_service: OK")
}

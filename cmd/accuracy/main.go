// Command accuracy regenerates the paper's Table 1: the full scenario
// set is run through both the pin-accurate model and the TLM, and the
// per-scenario cycle counts, differences and the average difference are
// printed in the layout of the paper's table. The paper reports an
// average accuracy difference below 3%.
//
// The twelve scenario comparisons run concurrently on the internal/farm
// worker pool (each comparison itself runs its two models in parallel);
// the printed table stays in deterministic scenario order.
//
// The scenario set is declarative data (internal/spec): -spec FILE
// replaces the built-in Table 1 set with workload specs loaded from a
// JSON file holding one spec object or an array of them, so new
// scenario families run through the same harness without a rebuild.
//
// Usage:
//
//	accuracy [-csv] [-workers N] [-spec FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/spec"
)

// loadSpecs reads one spec or an array of specs from a JSON file and
// compiles them; decoding is strict in both forms (spec.DecodeList).
func loadSpecs(path string) ([]core.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	specs, err := spec.DecodeList(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ws := make([]core.Workload, len(specs))
	for i, s := range specs {
		w, err := core.FromSpec(s)
		if err != nil {
			return nil, fmt.Errorf("spec %d (%s): %w", i, s.Name, err)
		}
		ws[i] = w
	}
	return ws, nil
}

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	workers := flag.Int("workers", 0, "max concurrent scenario comparisons (0 = one per CPU)")
	specFile := flag.String("spec", "", "JSON workload spec (or array of specs) replacing the built-in Table 1 set")
	flag.Parse()

	scenarios := core.Table1Scenarios()
	if *specFile != "" {
		var err error
		scenarios, err = loadSpecs(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "accuracy: %v\n", err)
			os.Exit(2)
		}
	}
	rows, avg := core.CompareAllN(scenarios, *workers)
	if *csvOut {
		fmt.Println("scenario,rtl_cycles,tl_cycles,diff_pct")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%.4f\n", r.Name, uint64(r.RTLCycles), uint64(r.TLMCycles), r.ErrPct)
		}
		fmt.Printf("average,,,%.4f\n", avg)
		return
	}
	fmt.Println("Table 1 reproduction: TL vs pin-accurate cycle counts per traffic scenario")
	fmt.Println()
	core.WriteAccuracyTable(os.Stdout, rows, avg)
	fmt.Println()
	if avg < 3 {
		fmt.Printf("average difference %.2f%% — within the paper's <3%% claim\n", avg)
	} else {
		fmt.Printf("average difference %.2f%% — OUTSIDE the paper's <3%% claim\n", avg)
		os.Exit(1)
	}
}

// Command accuracy regenerates the paper's Table 1: the full scenario
// set is run through both the pin-accurate model and the TLM, and the
// per-scenario cycle counts, differences and the average difference are
// printed in the layout of the paper's table. The paper reports an
// average accuracy difference below 3%.
//
// The twelve scenario comparisons run concurrently on the internal/farm
// worker pool (each comparison itself runs its two models in parallel);
// the printed table stays in deterministic scenario order.
//
// Usage:
//
//	accuracy [-csv] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	workers := flag.Int("workers", 0, "max concurrent scenario comparisons (0 = one per CPU)")
	flag.Parse()

	rows, avg := core.CompareAllN(core.Table1Scenarios(), *workers)
	if *csvOut {
		fmt.Println("scenario,rtl_cycles,tl_cycles,diff_pct")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%.4f\n", r.Name, uint64(r.RTLCycles), uint64(r.TLMCycles), r.ErrPct)
		}
		fmt.Printf("average,,,%.4f\n", avg)
		return
	}
	fmt.Println("Table 1 reproduction: TL vs pin-accurate cycle counts per traffic scenario")
	fmt.Println()
	core.WriteAccuracyTable(os.Stdout, rows, avg)
	fmt.Println()
	if avg < 3 {
		fmt.Printf("average difference %.2f%% — within the paper's <3%% claim\n", avg)
	} else {
		fmt.Printf("average difference %.2f%% — OUTSIDE the paper's <3%% claim\n", avg)
		os.Exit(1)
	}
}

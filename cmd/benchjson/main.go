// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, and doubles as CI's benchmark gate:
// it fails when the stream contains fewer benchmarks than expected
// (a silently skipped bench job would otherwise look green) or when a
// benchmark required to be allocation-free reports allocations
// (guarding the zero-alloc scheduler hot path). CI uploads the JSON
// as the per-commit perf-trajectory artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-o FILE] [-min N] [-zero-allocs Name,Name]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Name is the benchmark name without the -procs suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 if the line had none).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op", "B/op", "allocs/op", and
	// any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes a `go test -bench` text stream.
func parse(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return rep, err
			}
			if ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit..." line.
// ok=false for Benchmark-prefixed lines that aren't results (e.g. a
// bare name echoed with -v).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false, nil
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // status line, not a result
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return b, false, fmt.Errorf("benchjson: odd metric list in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return b, false, fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}

// splitProcs splits the trailing -GOMAXPROCS off a benchmark name.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 0
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 0
	}
	return s[:i], p
}

// gate applies the CI assertions to a parsed report.
func gate(rep Report, minBenchmarks int, zeroAllocs []string) error {
	if len(rep.Benchmarks) < minBenchmarks {
		return fmt.Errorf("benchjson: parsed %d benchmarks, want >= %d (did the bench run execute?)",
			len(rep.Benchmarks), minBenchmarks)
	}
	for _, want := range zeroAllocs {
		if want == "" {
			continue
		}
		found := false
		for _, b := range rep.Benchmarks {
			if b.Name != want {
				continue
			}
			found = true
			allocs, ok := b.Metrics["allocs/op"]
			if !ok {
				return fmt.Errorf("benchjson: %s has no allocs/op metric (run with -benchmem)", want)
			}
			if allocs != 0 {
				return fmt.Errorf("benchjson: %s allocates %.0f allocs/op, required 0", want, allocs)
			}
		}
		if !found {
			return fmt.Errorf("benchjson: required benchmark %s not in the stream", want)
		}
	}
	return nil
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	minB := flag.Int("min", 1, "fail unless at least this many benchmarks parsed")
	zero := flag.String("zero-allocs", "", "comma-separated benchmark names that must report 0 allocs/op")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if err := gate(rep, *minB, strings.Split(*zero, ",")); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

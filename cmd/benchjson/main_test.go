package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkTLMSimulation-8   	     100	    680123 ns/op	   21040 B/op	      76 allocs/op
BenchmarkRTLSimulation-8   	      10	  12345678 ns/op
PASS
ok  	repro	2.345s
pkg: repro/internal/sim
BenchmarkSchedulerPostDispatch-8	 5000000	       2.31 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelTick/gated-8     	 1000000	      55.5 ns/op
PASS
ok  	repro/internal/sim	1.234s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Package != "repro" || b.Name != "BenchmarkTLMSimulation" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("first %+v", b)
	}
	if b.Metrics["ns/op"] != 680123 || b.Metrics["allocs/op"] != 76 {
		t.Fatalf("metrics %v", b.Metrics)
	}
	sched := rep.Benchmarks[2]
	if sched.Package != "repro/internal/sim" || sched.Metrics["ns/op"] != 2.31 {
		t.Fatalf("sched %+v", sched)
	}
	sub := rep.Benchmarks[3]
	if sub.Name != "BenchmarkKernelTick/gated" || sub.Procs != 8 {
		t.Fatalf("subbench %+v", sub)
	}
}

func TestGate(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := gate(rep, 4, []string{"BenchmarkSchedulerPostDispatch"}); err != nil {
		t.Fatalf("healthy gate failed: %v", err)
	}
	if err := gate(rep, 5, nil); err == nil || !strings.Contains(err.Error(), "want >= 5") {
		t.Fatalf("min gate: %v", err)
	}
	if err := gate(rep, 1, []string{"BenchmarkMissing"}); err == nil || !strings.Contains(err.Error(), "not in the stream") {
		t.Fatalf("missing gate: %v", err)
	}
	// A benchmark with allocations cannot pass the zero-alloc gate...
	if err := gate(rep, 1, []string{"BenchmarkTLMSimulation"}); err == nil || !strings.Contains(err.Error(), "allocates") {
		t.Fatalf("alloc gate: %v", err)
	}
	// ...and one without -benchmem data is an explicit error, not a pass.
	if err := gate(rep, 1, []string{"BenchmarkRTLSimulation"}); err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("no-metric gate: %v", err)
	}
}

func TestParseRejectsMalformedMetrics(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 100 5 ns/op 3\n")); err == nil {
		t.Fatal("odd metric list accepted")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX\nBenchmarkY-8 notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d from noise", len(rep.Benchmarks))
	}
}

// Command rtlsim runs the pin-accurate AHB+ model — the baseline the
// TLM is validated against — on the same workload families as ahbsim,
// printing the identical profile so the two abstraction levels are
// directly comparable:
//
//	rtlsim -workload seq -txns 500
//	ahbsim -workload seq -txns 500   # same cycle counts, much faster
//
// Usage:
//
//	rtlsim [-workload seq|rand|burst|stream|mixed] [-masters N]
//	       [-txns N] [-wb depth] [-trace N] [-config file.json]
package main

import (
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	f := cli.Register(flag.CommandLine)
	flag.Parse()
	os.Exit(cli.Execute(f, core.RTL, os.Stdout))
}

// Command docscheck keeps the markdown tree honest. It fails (exit 1,
// one line per finding) on two classes of rot:
//
//   - broken intra-repo links: every relative [text](target) in every
//     tracked .md file must point at a file that exists (anchors are
//     stripped; external schemes and pure-anchor links are ignored);
//   - route drift: the route inventory in docs/api.md (the table
//     between the routes:begin/end markers) must list exactly the
//     routes registered in the worker mux (internal/service) and the
//     router mux (internal/shard) — a route added in code without a
//     docs row, or documented without existing, fails the build.
//
// CI runs it in the docs job; run it locally from the repo root:
//
//	go run ./cmd/docscheck
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// mdLink matches [text](target); images ![alt](target) match too via
// the bracket text, which is fine — their targets must exist as well.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// routeReg matches a mux registration in the serving packages. Both
// tiers funnel every route through a local handle(pattern, ...)
// helper, so this one shape is the complete inventory.
var routeReg = regexp.MustCompile(`handle\("([^"]+)"`)

// docRoute matches a backticked route cell in the api.md inventory.
var docRoute = regexp.MustCompile("`(/[^`]*)`")

func main() {
	problems := 0
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "docscheck: "+format+"\n", args...)
		problems++
	}

	checkLinks(report)
	checkRoutes(report)

	if problems > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", problems)
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links and route inventory are clean")
}

// checkLinks verifies every relative link target in every .md file.
func checkLinks(report func(string, ...any)) {
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		// The paper-corpus files are captured external text, not part
		// of the maintained docs tree; their links point into sources
		// this repo never vendored.
		switch path {
		case "PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md":
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				continue // same-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				report("%s: broken link target %q (resolved %s)", path, m[1], resolved)
			}
		}
		return nil
	})
	if err != nil {
		report("walking markdown tree: %v", err)
	}
}

// checkRoutes diffs the api.md inventory against the registered muxes.
func checkRoutes(report func(string, ...any)) {
	code := map[string]bool{}
	for _, src := range []string{
		"internal/service/service.go",
		"internal/shard/router.go",
	} {
		body, err := os.ReadFile(src)
		if err != nil {
			report("reading %s: %v", src, err)
			return
		}
		for _, m := range routeReg.FindAllStringSubmatch(string(body), -1) {
			code[m[1]] = true
		}
	}
	if len(code) == 0 {
		report("no handle(...) registrations found — did the serving muxes move?")
		return
	}

	api, err := os.ReadFile("docs/api.md")
	if err != nil {
		report("reading docs/api.md: %v", err)
		return
	}
	text := string(api)
	lo := strings.Index(text, "<!-- routes:begin -->")
	hi := strings.Index(text, "<!-- routes:end -->")
	if lo < 0 || hi < 0 || hi < lo {
		report("docs/api.md: routes:begin/routes:end markers missing or out of order")
		return
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(text[lo:hi], "\n") {
		// Only the route column (the first backticked cell) counts;
		// description cells may mention paths freely.
		if !strings.HasPrefix(strings.TrimSpace(line), "| `") {
			continue
		}
		if m := docRoute.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}

	var missing, stale []string
	for r := range code {
		if !documented[r] {
			missing = append(missing, r)
		}
	}
	for r := range documented {
		if !code[r] {
			stale = append(stale, r)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, r := range missing {
		report("docs/api.md route inventory is missing %q (registered in code)", r)
	}
	for _, r := range stale {
		report("docs/api.md documents route %q, which no mux registers", r)
	}
}

// Command sweep runs the ablation experiments of DESIGN.md: write
// buffer depth (A1), request pipelining (A2), BI/bank interleaving
// (A3), the arbitration filter set (A4), the DDRC page policy (A6) and
// the bus width (A7). Each sweep prints the metric the feature exists
// to move. The independent runs of a sweep execute concurrently on the
// internal/farm worker pool, so multi-scenario sweeps scale with cores
// while the printed tables stay in deterministic order.
//
// Usage:
//
//	sweep [-which wb|pipelining|bi|filters|pagepolicy|buswidth|all] [-txns N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/farm"
)

// workers is the farm bound shared by every sweep (-workers flag).
var workers int

// runAll executes the workloads on the farm (TLM, index order results)
// and exits nonzero if any run failed to drain.
func runAll(ws []core.Workload) []core.RunResult {
	results := farm.Map(workers, len(ws), func(i int) core.RunResult {
		return core.Run(ws[i], core.TLM, core.Options{})
	})
	for i, res := range results {
		if !res.Completed {
			fmt.Fprintf(os.Stderr, "sweep: %s did not complete\n", ws[i].Name)
			os.Exit(1)
		}
	}
	return results
}

func sweepWB(txns int) {
	fmt.Println("A1: write-buffer depth sweep (saturating write-heavy 3-master workload)")
	fmt.Printf("%8s %10s %12s %12s %14s %12s\n", "depth", "cycles", "meanLat(m0)", "meanLat(m1)", "util%", "fullStalls")
	depths := core.AblationWriteBufferDepths()
	var ws []core.Workload
	for _, d := range depths {
		ws = append(ws, core.SaturatingWorkload(d, txns))
	}
	for i, res := range runAll(ws) {
		fmt.Printf("%8d %10d %12.1f %12.1f %14.1f %12d\n",
			depths[i], uint64(res.Cycles), res.Stats.Masters[0].MeanLatency(),
			res.Stats.Masters[1].MeanLatency(),
			100*res.Stats.Utilization(), res.Stats.WBFullStalls)
	}
	fmt.Println()
}

func sweepPipelining(txns int) {
	fmt.Println("A2: request pipelining on/off (saturating 3-master workload)")
	fmt.Printf("%12s %10s %14s\n", "pipelining", "cycles", "util%")
	modes := []bool{true, false}
	var ws []core.Workload
	for _, on := range modes {
		w := core.SaturatingWorkload(8, txns)
		w.Params.Pipelining = on
		ws = append(ws, w)
	}
	for i, res := range runAll(ws) {
		fmt.Printf("%12v %10d %14.1f\n", modes[i], uint64(res.Cycles), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepBI(txns int) {
	fmt.Println("A3: BI / bank interleaving on/off (bank-striped streams)")
	fmt.Printf("%6s %10s %12s %12s %12s\n", "BI", "cycles", "rowHit%", "hintActs", "util%")
	modes := []bool{true, false}
	var ws []core.Workload
	for _, on := range modes {
		ws = append(ws, core.InterleavingWorkload(on, txns))
	}
	for i, res := range runAll(ws) {
		fmt.Printf("%6v %10d %12.1f %12d %12.1f\n",
			modes[i], uint64(res.Cycles), 100*res.Stats.DDR.HitRate(),
			res.Stats.DDR.HintActivates, 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepFilters(txns int) {
	fmt.Println("A4: arbitration filters — full AHB+ set vs round-robin only (RT master m2)")
	fmt.Printf("%12s %10s %14s %14s %12s\n", "filters", "cycles", "maxLat(RT)", "QoSviolations", "util%")
	modes := []bool{true, false}
	var ws []core.Workload
	for _, full := range modes {
		w := core.AblationWorkload(8, txns)
		if !full {
			w.Params.Filters.Urgency = false
			w.Params.Filters.RealTime = false
			w.Params.Filters.Bandwidth = false
			w.Params.Filters.BankAffinity = false
		}
		ws = append(ws, w)
	}
	for i, res := range runAll(ws) {
		label := "all-seven"
		if !modes[i] {
			label = "rr-only"
		}
		fmt.Printf("%12s %10d %14d %14d %12.1f\n",
			label, uint64(res.Cycles), uint64(res.Stats.Masters[2].LatencyMax),
			res.Stats.TotalViolations(), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepPagePolicy(txns int) {
	fmt.Println("A6: DDRC page policy (row-thrashing single master with think time)")
	fmt.Printf("%14s %10s %12s\n", "policy", "cycles", "rowHit%")
	modes := []bool{false, true}
	var ws []core.Workload
	for _, closed := range modes {
		ws = append(ws, core.PagePolicyWorkload(closed, txns))
	}
	for i, res := range runAll(ws) {
		name := "open-page"
		if modes[i] {
			name = "closed-page"
		}
		fmt.Printf("%14s %10d %12.1f\n", name, uint64(res.Cycles), 100*res.Stats.DDR.HitRate())
	}
	fmt.Println()
}

func sweepBusWidth(txns int) {
	fmt.Println("A7: bus width (streaming DMA pair)")
	fmt.Printf("%8s %10s %16s\n", "width", "cycles", "bytes/kcycle")
	widths := []int{4, 8}
	var ws []core.Workload
	for _, width := range widths {
		ws = append(ws, core.BusWidthWorkload(width, txns))
	}
	for i, res := range runAll(ws) {
		fmt.Printf("%6db %10d %16.1f\n", widths[i]*8, uint64(res.Cycles), res.Stats.ThroughputBytesPerKCycle())
	}
	fmt.Println()
}

func main() {
	which := flag.String("which", "all", "sweep to run: wb|pipelining|bi|filters|pagepolicy|buswidth|all")
	txns := flag.Int("txns", 500, "transactions per master")
	flag.IntVar(&workers, "workers", 0, "max concurrent runs (0 = one per CPU)")
	flag.Parse()

	switch *which {
	case "wb":
		sweepWB(*txns)
	case "pipelining":
		sweepPipelining(*txns)
	case "bi":
		sweepBI(*txns)
	case "filters":
		sweepFilters(*txns)
	case "pagepolicy":
		sweepPagePolicy(*txns)
	case "buswidth":
		sweepBusWidth(*txns)
	case "all":
		sweepWB(*txns)
		sweepPipelining(*txns)
		sweepBI(*txns)
		sweepFilters(*txns)
		sweepPagePolicy(*txns)
		sweepBusWidth(*txns)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *which)
		os.Exit(2)
	}
}

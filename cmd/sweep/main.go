// Command sweep runs the ablation experiments of DESIGN.md: write
// buffer depth (A1), request pipelining (A2), BI/bank interleaving
// (A3), the arbitration filter set (A4), the DDRC page policy (A6) and
// the bus width (A7). Each sweep prints the metric the feature exists
// to move. The independent runs of a sweep execute concurrently on the
// internal/farm worker pool, so multi-scenario sweeps scale with cores
// while the printed tables stay in deterministic order.
//
// Every sweep is a declarative parameter grid (internal/sweep): a
// base spec plus one axis, expanded by the same engine the service's
// POST /sweep endpoint uses. Both the simulate path and -dump consume
// the expanded variants — so `-dump DIR` writes exactly the workloads
// the sweep simulates, ready to replay through `accuracy -spec` or
// the simulation service.
//
// With -analyze each family additionally prints its aggregate answer
// — the best variant on the family's headline metric and the
// two-metric Pareto frontier — computed by internal/agg, the same
// engine behind the service's POST /sweep/analyze, so the CLI table
// and a cluster analysis of the same grid name the same winner.
//
// Usage:
//
//	sweep [-which wb|pipelining|bi|filters|pagepolicy|buswidth|all] [-txns N] [-workers N] [-dump DIR] [-analyze]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// workers is the farm bound shared by every sweep (-workers flag).
var workers int

// analyze toggles the per-family argmin/frontier summary (-analyze).
var analyze bool

// grid expands a single-axis sweep over the base spec.
func grid(name string, base spec.Spec, param string, values []sweep.Value) []sweep.Variant {
	return sweep.MustExpand(sweep.Grid{
		Name: name, Base: base,
		Axes: []sweep.Axis{{Param: param, Values: values}},
	})
}

func wbVariants(txns int) []sweep.Variant {
	var vals []sweep.Value
	for _, d := range core.AblationWriteBufferDepths() {
		vals = append(vals, sweep.Value{
			Label: fmt.Sprintf("%d", d), Slug: fmt.Sprintf("depth%d", d), V: d,
		})
	}
	return grid("ablation/wb", spec.SaturatingSpec(8, txns), sweep.ParamWriteBufferDepth, vals)
}

func pipeliningVariants(txns int) []sweep.Variant {
	return grid("ablation/pipelining", spec.SaturatingSpec(8, txns), sweep.ParamPipelining,
		[]sweep.Value{{V: true}, {V: false}})
}

func biVariants(txns int) []sweep.Variant {
	return grid("ablation/bi", spec.InterleavingSpec(true, txns), sweep.ParamBIEnabled,
		[]sweep.Value{{V: true}, {V: false}})
}

func filtersVariants(txns int) []sweep.Variant {
	return grid("ablation/filters", spec.AblationSpec(8, txns), sweep.ParamFilters,
		[]sweep.Value{
			{Label: "all-seven", V: "all"},
			{Label: "rr-only", V: "rr-only"},
		})
}

func pagePolicyVariants(txns int) []sweep.Variant {
	return grid("ablation/pagepolicy", spec.PagePolicySpec(false, txns), sweep.ParamClosedPage,
		[]sweep.Value{
			{Label: "open-page", V: false},
			{Label: "closed-page", V: true},
		})
}

func busWidthVariants(txns int) []sweep.Variant {
	return grid("ablation/buswidth", spec.BusWidthSpec(4, txns), sweep.ParamBusBytes,
		[]sweep.Value{
			{Label: "32b", Slug: "32", V: 4},
			{Label: "64b", Slug: "64", V: 8},
		})
}

// runAll compiles and executes the variants on the farm (TLM, index
// order results) and exits nonzero if any run failed to drain.
func runAll(vs []sweep.Variant) []core.RunResult {
	ws := make([]core.Workload, len(vs))
	for i, v := range vs {
		ws[i] = core.MustFromSpec(v.Spec)
	}
	results := farm.Map(workers, len(ws), func(i int) core.RunResult {
		return core.Run(ws[i], core.TLM, core.Options{})
	})
	for i, res := range results {
		if !res.Completed {
			fmt.Fprintf(os.Stderr, "sweep: %s did not complete\n", ws[i].Name)
			os.Exit(1)
		}
	}
	return results
}

// printAnalysis runs the aggregation engine over one finished family
// and prints its verdict — the exact argmin/frontier code path the
// service's POST /sweep/analyze serves, fed the in-process results.
func printAnalysis(vs []sweep.Variant, results []core.RunResult, req agg.Request) {
	if !analyze {
		return
	}
	inputs := make([]agg.Input, len(vs))
	for i, v := range vs {
		inputs[i] = agg.Input{
			Index: v.Index, Name: v.Spec.Name, Hash: v.Hash, Params: v.Params,
			Metrics: agg.RunMetrics(uint64(results[i].Cycles), results[i].Violations, results[i].Stats),
		}
	}
	a, err := agg.Analyze(req, false, nil, len(vs), inputs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: analysis: %v\n", err)
		os.Exit(1)
	}
	dir := "lowest"
	if a.Objective == agg.ObjectiveMax {
		dir = "highest"
	}
	fmt.Printf("  best (%s %s): %s = %g at %s\n", dir, a.Metric, a.Metric, a.Best.Value, a.Best.Name)
	if a.Frontier != nil {
		fmt.Printf("  pareto frontier (%s %s vs %s %s):\n",
			a.Frontier.XObjective, a.Frontier.X, a.Frontier.YObjective, a.Frontier.Y)
		for _, p := range a.Frontier.Points {
			fmt.Printf("    %-36s %s=%g %s=%g\n", p.Name, a.Frontier.X, p.X, a.Frontier.Y, p.Y)
		}
	}
}

func sweepWB(txns int) {
	fmt.Println("A1: write-buffer depth sweep (saturating write-heavy 3-master workload)")
	fmt.Printf("%8s %10s %12s %12s %14s %12s\n", "depth", "cycles", "meanLat(m0)", "meanLat(m1)", "util%", "fullStalls")
	vs := wbVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%8s %10d %12.1f %12.1f %14.1f %12d\n",
			vs[i].Labels[0], uint64(res.Cycles), res.Stats.Masters[0].MeanLatency(),
			res.Stats.Masters[1].MeanLatency(),
			100*res.Stats.Utilization(), res.Stats.WBFullStalls)
	}
	printAnalysis(vs, results, agg.Request{
		Metric:   "cycles",
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "mean_latency/m0"},
	})
	fmt.Println()
}

func sweepPipelining(txns int) {
	fmt.Println("A2: request pipelining on/off (saturating 3-master workload)")
	fmt.Printf("%12s %10s %14s\n", "pipelining", "cycles", "util%")
	vs := pipeliningVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%12s %10d %14.1f\n", vs[i].Labels[0], uint64(res.Cycles), 100*res.Stats.Utilization())
	}
	printAnalysis(vs, results, agg.Request{
		Metric:   "cycles",
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "utilization", YObjective: agg.ObjectiveMax},
	})
	fmt.Println()
}

func sweepBI(txns int) {
	fmt.Println("A3: BI / bank interleaving on/off (bank-striped streams)")
	fmt.Printf("%6s %10s %12s %12s %12s\n", "BI", "cycles", "rowHit%", "hintActs", "util%")
	vs := biVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%6s %10d %12.1f %12d %12.1f\n",
			vs[i].Labels[0], uint64(res.Cycles), 100*res.Stats.DDR.HitRate(),
			res.Stats.DDR.HintActivates, 100*res.Stats.Utilization())
	}
	printAnalysis(vs, results, agg.Request{
		Metric:   "cycles",
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "ddr_hit_rate", YObjective: agg.ObjectiveMax},
	})
	fmt.Println()
}

func sweepFilters(txns int) {
	fmt.Println("A4: arbitration filters — full AHB+ set vs round-robin only (RT master m2)")
	fmt.Printf("%12s %10s %14s %14s %12s\n", "filters", "cycles", "maxLat(RT)", "QoSviolations", "util%")
	vs := filtersVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%12s %10d %14d %14d %12.1f\n",
			vs[i].Labels[0], uint64(res.Cycles), uint64(res.Stats.Masters[2].LatencyMax),
			res.Stats.TotalViolations(), 100*res.Stats.Utilization())
	}
	printAnalysis(vs, results, agg.Request{
		Metric:   "max_latency/m2",
		Frontier: &agg.FrontierSpec{X: "max_latency/m2", Y: "cycles"},
	})
	fmt.Println()
}

func sweepPagePolicy(txns int) {
	fmt.Println("A6: DDRC page policy (row-thrashing single master with think time)")
	fmt.Printf("%14s %10s %12s\n", "policy", "cycles", "rowHit%")
	vs := pagePolicyVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%14s %10d %12.1f\n", vs[i].Labels[0], uint64(res.Cycles), 100*res.Stats.DDR.HitRate())
	}
	printAnalysis(vs, results, agg.Request{
		Metric:   "cycles",
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "ddr_hit_rate", YObjective: agg.ObjectiveMax},
	})
	fmt.Println()
}

func sweepBusWidth(txns int) {
	fmt.Println("A7: bus width (streaming DMA pair)")
	fmt.Printf("%8s %10s %16s\n", "width", "cycles", "bytes/kcycle")
	vs := busWidthVariants(txns)
	results := runAll(vs)
	for i, res := range results {
		fmt.Printf("%8s %10d %16.1f\n", vs[i].Labels[0], uint64(res.Cycles), res.Stats.ThroughputBytesPerKCycle())
	}
	printAnalysis(vs, results, agg.Request{
		Metric: "throughput", Objective: agg.ObjectiveMax,
		Frontier: &agg.FrontierSpec{X: "cycles", Y: "throughput", YObjective: agg.ObjectiveMax},
	})
	fmt.Println()
}

// allVariants collects every sweep's variants — the single source
// -dump writes from.
func allVariants(txns int) []sweep.Variant {
	var vs []sweep.Variant
	vs = append(vs, wbVariants(txns)...)
	vs = append(vs, pipeliningVariants(txns)...)
	vs = append(vs, biVariants(txns)...)
	vs = append(vs, filtersVariants(txns)...)
	vs = append(vs, pagePolicyVariants(txns)...)
	vs = append(vs, busWidthVariants(txns)...)
	return vs
}

// dumpSpecs writes every sweep variant's spec to dir as indented
// JSON, named after the spec (ablation/wb/depth8 -> wb_depth8.json).
func dumpSpecs(dir string, txns int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	vs := allVariants(txns)
	for _, v := range vs {
		b, err := v.Spec.MarshalIndent()
		if err != nil {
			return err
		}
		file := strings.ReplaceAll(strings.TrimPrefix(v.Spec.Name, "ablation/"), "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, file), b, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d workload specs to %s\n", len(vs), dir)
	return nil
}

func main() {
	which := flag.String("which", "all", "sweep to run: wb|pipelining|bi|filters|pagepolicy|buswidth|all")
	txns := flag.Int("txns", 500, "transactions per master")
	dump := flag.String("dump", "", "write the sweep workload specs as JSON to this directory instead of simulating")
	flag.BoolVar(&analyze, "analyze", false, "print each family's argmin + Pareto frontier (internal/agg)")
	flag.IntVar(&workers, "workers", 0, "max concurrent runs (0 = one per CPU)")
	flag.Parse()

	if *dump != "" {
		if err := dumpSpecs(*dump, *txns); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *which {
	case "wb":
		sweepWB(*txns)
	case "pipelining":
		sweepPipelining(*txns)
	case "bi":
		sweepBI(*txns)
	case "filters":
		sweepFilters(*txns)
	case "pagepolicy":
		sweepPagePolicy(*txns)
	case "buswidth":
		sweepBusWidth(*txns)
	case "all":
		sweepWB(*txns)
		sweepPipelining(*txns)
		sweepBI(*txns)
		sweepFilters(*txns)
		sweepPagePolicy(*txns)
		sweepBusWidth(*txns)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *which)
		os.Exit(2)
	}
}

// Command sweep runs the ablation experiments of DESIGN.md: write
// buffer depth (A1), request pipelining (A2), BI/bank interleaving
// (A3), and the arbitration filter set (A4). Each sweep prints the
// metric the feature exists to move.
//
// Usage:
//
//	sweep [-which wb|pipelining|bi|filters|all] [-txns N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func runTLM(w core.Workload) core.RunResult {
	res := core.Run(w, core.TLM, core.Options{})
	if !res.Completed {
		fmt.Fprintf(os.Stderr, "sweep: %s did not complete\n", w.Name)
		os.Exit(1)
	}
	return res
}

func sweepWB(txns int) {
	fmt.Println("A1: write-buffer depth sweep (saturating write-heavy 3-master workload)")
	fmt.Printf("%8s %10s %12s %12s %14s %12s\n", "depth", "cycles", "meanLat(m0)", "meanLat(m1)", "util%", "fullStalls")
	for _, d := range core.AblationWriteBufferDepths() {
		res := runTLM(core.SaturatingWorkload(d, txns))
		fmt.Printf("%8d %10d %12.1f %12.1f %14.1f %12d\n",
			d, uint64(res.Cycles), res.Stats.Masters[0].MeanLatency(),
			res.Stats.Masters[1].MeanLatency(),
			100*res.Stats.Utilization(), res.Stats.WBFullStalls)
	}
	fmt.Println()
}

func sweepPipelining(txns int) {
	fmt.Println("A2: request pipelining on/off (saturating 3-master workload)")
	fmt.Printf("%12s %10s %14s\n", "pipelining", "cycles", "util%")
	for _, on := range []bool{true, false} {
		w := core.SaturatingWorkload(8, txns)
		w.Params.Pipelining = on
		res := runTLM(w)
		fmt.Printf("%12v %10d %14.1f\n", on, uint64(res.Cycles), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepBI(txns int) {
	fmt.Println("A3: BI / bank interleaving on/off (bank-striped streams)")
	fmt.Printf("%6s %10s %12s %12s %12s\n", "BI", "cycles", "rowHit%", "hintActs", "util%")
	for _, on := range []bool{true, false} {
		res := runTLM(core.InterleavingWorkload(on, txns))
		fmt.Printf("%6v %10d %12.1f %12d %12.1f\n",
			on, uint64(res.Cycles), 100*res.Stats.DDR.HitRate(),
			res.Stats.DDR.HintActivates, 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepFilters(txns int) {
	fmt.Println("A4: arbitration filters — full AHB+ set vs round-robin only (RT master m2)")
	fmt.Printf("%12s %10s %14s %14s %12s\n", "filters", "cycles", "maxLat(RT)", "QoSviolations", "util%")
	for _, full := range []bool{true, false} {
		w := core.AblationWorkload(8, txns)
		if !full {
			w.Params.Filters.Urgency = false
			w.Params.Filters.RealTime = false
			w.Params.Filters.Bandwidth = false
			w.Params.Filters.BankAffinity = false
		}
		res := runTLM(w)
		label := "all-seven"
		if !full {
			label = "rr-only"
		}
		fmt.Printf("%12s %10d %14d %14d %12.1f\n",
			label, uint64(res.Cycles), uint64(res.Stats.Masters[2].LatencyMax),
			res.Stats.TotalViolations(), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepPagePolicy(txns int) {
	fmt.Println("A6: DDRC page policy (row-thrashing single master with think time)")
	fmt.Printf("%14s %10s %12s\n", "policy", "cycles", "rowHit%")
	for _, closed := range []bool{false, true} {
		res := runTLM(core.PagePolicyWorkload(closed, txns))
		name := "open-page"
		if closed {
			name = "closed-page"
		}
		fmt.Printf("%14s %10d %12.1f\n", name, uint64(res.Cycles), 100*res.Stats.DDR.HitRate())
	}
	fmt.Println()
}

func sweepBusWidth(txns int) {
	fmt.Println("A7: bus width (streaming DMA pair)")
	fmt.Printf("%8s %10s %16s\n", "width", "cycles", "bytes/kcycle")
	for _, width := range []int{4, 8} {
		res := runTLM(core.BusWidthWorkload(width, txns))
		fmt.Printf("%6db %10d %16.1f\n", width*8, uint64(res.Cycles), res.Stats.ThroughputBytesPerKCycle())
	}
	fmt.Println()
}

func main() {
	which := flag.String("which", "all", "sweep to run: wb|pipelining|bi|filters|pagepolicy|buswidth|all")
	txns := flag.Int("txns", 500, "transactions per master")
	flag.Parse()

	switch *which {
	case "wb":
		sweepWB(*txns)
	case "pipelining":
		sweepPipelining(*txns)
	case "bi":
		sweepBI(*txns)
	case "filters":
		sweepFilters(*txns)
	case "pagepolicy":
		sweepPagePolicy(*txns)
	case "buswidth":
		sweepBusWidth(*txns)
	case "all":
		sweepWB(*txns)
		sweepPipelining(*txns)
		sweepBI(*txns)
		sweepFilters(*txns)
		sweepPagePolicy(*txns)
		sweepBusWidth(*txns)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *which)
		os.Exit(2)
	}
}

// Command sweep runs the ablation experiments of DESIGN.md: write
// buffer depth (A1), request pipelining (A2), BI/bank interleaving
// (A3), the arbitration filter set (A4), the DDRC page policy (A6) and
// the bus width (A7). Each sweep prints the metric the feature exists
// to move. The independent runs of a sweep execute concurrently on the
// internal/farm worker pool, so multi-scenario sweeps scale with cores
// while the printed tables stay in deterministic order.
//
// Every sweep's variants are declarative specs (internal/spec), built
// once by the per-sweep variant functions that both the simulate path
// and -dump consume — so `-dump DIR` writes exactly the workloads the
// sweep simulates, ready to replay through `accuracy -spec` or the
// simulation service.
//
// Usage:
//
//	sweep [-which wb|pipelining|bi|filters|pagepolicy|buswidth|all] [-txns N] [-workers N] [-dump DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/spec"
)

// workers is the farm bound shared by every sweep (-workers flag).
var workers int

// variant is one sweep data point: a label for the printed table and
// the workload spec behind it. The spec's Name doubles as the -dump
// filename.
type variant struct {
	label string
	s     spec.Spec
}

// named returns s relabeled with a sweep-scoped name.
func named(s spec.Spec, name string) spec.Spec {
	s.Name = name
	return s
}

func wbVariants(txns int) []variant {
	var vs []variant
	for _, d := range core.AblationWriteBufferDepths() {
		vs = append(vs, variant{fmt.Sprintf("%d", d),
			named(spec.SaturatingSpec(d, txns), fmt.Sprintf("ablation/wb/depth%d", d))})
	}
	return vs
}

func pipeliningVariants(txns int) []variant {
	var vs []variant
	for _, on := range []bool{true, false} {
		s := spec.SaturatingSpec(8, txns)
		s.Params.Pipelining = on
		vs = append(vs, variant{fmt.Sprintf("%v", on),
			named(s, fmt.Sprintf("ablation/pipelining/%v", on))})
	}
	return vs
}

func biVariants(txns int) []variant {
	var vs []variant
	for _, on := range []bool{true, false} {
		vs = append(vs, variant{fmt.Sprintf("%v", on),
			named(spec.InterleavingSpec(on, txns), fmt.Sprintf("ablation/bi/%v", on))})
	}
	return vs
}

func filtersVariants(txns int) []variant {
	var vs []variant
	for _, full := range []bool{true, false} {
		s := spec.AblationSpec(8, txns)
		label := "all-seven"
		if !full {
			label = "rr-only"
			s.Params.Filters.Urgency = false
			s.Params.Filters.RealTime = false
			s.Params.Filters.Bandwidth = false
			s.Params.Filters.BankAffinity = false
		}
		vs = append(vs, variant{label, named(s, "ablation/filters/"+label)})
	}
	return vs
}

func pagePolicyVariants(txns int) []variant {
	var vs []variant
	for _, closed := range []bool{false, true} {
		label := "open-page"
		if closed {
			label = "closed-page"
		}
		vs = append(vs, variant{label,
			named(spec.PagePolicySpec(closed, txns), "ablation/pagepolicy/"+label)})
	}
	return vs
}

func busWidthVariants(txns int) []variant {
	var vs []variant
	for _, width := range []int{4, 8} {
		vs = append(vs, variant{fmt.Sprintf("%db", width*8),
			named(spec.BusWidthSpec(width, txns), fmt.Sprintf("ablation/buswidth/%d", width*8))})
	}
	return vs
}

// runAll compiles and executes the variants on the farm (TLM, index
// order results) and exits nonzero if any run failed to drain.
func runAll(vs []variant) []core.RunResult {
	ws := make([]core.Workload, len(vs))
	for i, v := range vs {
		ws[i] = core.MustFromSpec(v.s)
	}
	results := farm.Map(workers, len(ws), func(i int) core.RunResult {
		return core.Run(ws[i], core.TLM, core.Options{})
	})
	for i, res := range results {
		if !res.Completed {
			fmt.Fprintf(os.Stderr, "sweep: %s did not complete\n", ws[i].Name)
			os.Exit(1)
		}
	}
	return results
}

func sweepWB(txns int) {
	fmt.Println("A1: write-buffer depth sweep (saturating write-heavy 3-master workload)")
	fmt.Printf("%8s %10s %12s %12s %14s %12s\n", "depth", "cycles", "meanLat(m0)", "meanLat(m1)", "util%", "fullStalls")
	vs := wbVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%8s %10d %12.1f %12.1f %14.1f %12d\n",
			vs[i].label, uint64(res.Cycles), res.Stats.Masters[0].MeanLatency(),
			res.Stats.Masters[1].MeanLatency(),
			100*res.Stats.Utilization(), res.Stats.WBFullStalls)
	}
	fmt.Println()
}

func sweepPipelining(txns int) {
	fmt.Println("A2: request pipelining on/off (saturating 3-master workload)")
	fmt.Printf("%12s %10s %14s\n", "pipelining", "cycles", "util%")
	vs := pipeliningVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%12s %10d %14.1f\n", vs[i].label, uint64(res.Cycles), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepBI(txns int) {
	fmt.Println("A3: BI / bank interleaving on/off (bank-striped streams)")
	fmt.Printf("%6s %10s %12s %12s %12s\n", "BI", "cycles", "rowHit%", "hintActs", "util%")
	vs := biVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%6s %10d %12.1f %12d %12.1f\n",
			vs[i].label, uint64(res.Cycles), 100*res.Stats.DDR.HitRate(),
			res.Stats.DDR.HintActivates, 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepFilters(txns int) {
	fmt.Println("A4: arbitration filters — full AHB+ set vs round-robin only (RT master m2)")
	fmt.Printf("%12s %10s %14s %14s %12s\n", "filters", "cycles", "maxLat(RT)", "QoSviolations", "util%")
	vs := filtersVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%12s %10d %14d %14d %12.1f\n",
			vs[i].label, uint64(res.Cycles), uint64(res.Stats.Masters[2].LatencyMax),
			res.Stats.TotalViolations(), 100*res.Stats.Utilization())
	}
	fmt.Println()
}

func sweepPagePolicy(txns int) {
	fmt.Println("A6: DDRC page policy (row-thrashing single master with think time)")
	fmt.Printf("%14s %10s %12s\n", "policy", "cycles", "rowHit%")
	vs := pagePolicyVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%14s %10d %12.1f\n", vs[i].label, uint64(res.Cycles), 100*res.Stats.DDR.HitRate())
	}
	fmt.Println()
}

func sweepBusWidth(txns int) {
	fmt.Println("A7: bus width (streaming DMA pair)")
	fmt.Printf("%8s %10s %16s\n", "width", "cycles", "bytes/kcycle")
	vs := busWidthVariants(txns)
	for i, res := range runAll(vs) {
		fmt.Printf("%8s %10d %16.1f\n", vs[i].label, uint64(res.Cycles), res.Stats.ThroughputBytesPerKCycle())
	}
	fmt.Println()
}

// allVariants collects every sweep's variants — the single source
// -dump writes from.
func allVariants(txns int) []variant {
	var vs []variant
	vs = append(vs, wbVariants(txns)...)
	vs = append(vs, pipeliningVariants(txns)...)
	vs = append(vs, biVariants(txns)...)
	vs = append(vs, filtersVariants(txns)...)
	vs = append(vs, pagePolicyVariants(txns)...)
	vs = append(vs, busWidthVariants(txns)...)
	return vs
}

// dumpSpecs writes every sweep variant's spec to dir as indented
// JSON, named after the spec (ablation/wb/depth8 -> wb_depth8.json).
func dumpSpecs(dir string, txns int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	vs := allVariants(txns)
	for _, v := range vs {
		b, err := v.s.MarshalIndent()
		if err != nil {
			return err
		}
		file := strings.ReplaceAll(strings.TrimPrefix(v.s.Name, "ablation/"), "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, file), b, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d workload specs to %s\n", len(vs), dir)
	return nil
}

func main() {
	which := flag.String("which", "all", "sweep to run: wb|pipelining|bi|filters|pagepolicy|buswidth|all")
	txns := flag.Int("txns", 500, "transactions per master")
	dump := flag.String("dump", "", "write the sweep workload specs as JSON to this directory instead of simulating")
	flag.IntVar(&workers, "workers", 0, "max concurrent runs (0 = one per CPU)")
	flag.Parse()

	if *dump != "" {
		if err := dumpSpecs(*dump, *txns); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *which {
	case "wb":
		sweepWB(*txns)
	case "pipelining":
		sweepPipelining(*txns)
	case "bi":
		sweepBI(*txns)
	case "filters":
		sweepFilters(*txns)
	case "pagepolicy":
		sweepPagePolicy(*txns)
	case "buswidth":
		sweepBusWidth(*txns)
	case "all":
		sweepWB(*txns)
		sweepPipelining(*txns)
		sweepBI(*txns)
		sweepFilters(*txns)
		sweepPagePolicy(*txns)
		sweepBusWidth(*txns)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *which)
		os.Exit(2)
	}
}

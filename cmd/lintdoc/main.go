// Command lintdoc enforces godoc coverage on the packages whose API
// other layers (and operators reading the docs tree) depend on. For
// each audited package it requires a package comment and a doc
// comment on every exported top-level symbol — funcs, methods, types,
// and each exported name in const/var blocks (a comment on the
// enclosing block or group satisfies its members). Test files are
// skipped. One line per finding, exit 1 on any.
//
// CI runs it in the docs job; run it locally from the repo root:
//
//	go run ./cmd/lintdoc
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// auditedPackages are the serving/observability layers the docs tree
// documents; their godoc is part of the product surface.
var auditedPackages = []string{
	"internal/agg",
	"internal/obs",
	"internal/sched",
	"internal/service",
	"internal/shard",
	"internal/store",
	"internal/sweep",
}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = auditedPackages
	}

	var findings []string
	for _, dir := range dirs {
		findings = append(findings, auditDir(dir)...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, "lintdoc: "+f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported symbol(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("lintdoc: %d package(s) fully documented\n", len(dirs))
}

// auditDir parses one package directory and returns findings.
func auditDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}

	var findings []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
			findings = append(findings, auditFile(fset, file)...)
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return findings
}

// auditFile walks one file's top-level declarations.
func auditFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	undocumented := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || receiverUnexported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				undocumented(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						undocumented(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the block, the spec, or a
					// trailing line comment all count — grouped
					// constants routinely share the block's doc.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							undocumented(name.Pos(), kind, name.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// receiverUnexported reports whether a method hangs off an unexported
// type — its docs are the type's business, not the public API's.
func receiverUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return !v.IsExported()
		default:
			return false
		}
	}
}

// Command simd serves simulations over HTTP: the declarative workload
// specs of internal/spec go in, cycle-accurate results come out.
// Duplicate in-flight requests coalesce into one simulation, repeat
// requests are answered byte-identically from the content-addressed
// result cache (simulations are bit-reproducible, so a spec's hash
// determines its result), and the run queue is bounded — saturation
// answers 503 + Retry-After derived from the requester's own class
// queue depth instead of queueing without limit.
//
// Execution is tenant-aware and weighted-fair (internal/sched):
// every request carries a tenant (the X-Tenant header, renamable via
// -tenant-header) and a scheduling class (X-Class: "interactive" —
// the /run and /compare default — or "batch", the sweep default).
// Workers are shared by class weight (-class-weights, default
// interactive=4,batch=1) and round-robined fairly across the tenants
// inside each class, so one tenant's 100k-variant sweep can no
// longer starve another tenant's interactive /run. Each class has
// its own bounded queue (-queue is PER CLASS) and its own honest
// Retry-After. -fair=false collapses everything back to one FIFO
// queue for A/B comparison. Scheduling changes only WHEN a variant
// runs, never its bytes — responses stay byte-identical.
//
// With -store DIR the result cache is two-tier: an in-memory LRU in
// front of a disk-backed store, so a restarted simd serves previously
// computed specs byte-identically (X-Cache: hit) without
// re-simulating. The store is size-bounded (-store-max-bytes) and
// evicts by least-recent access.
//
// The same binary scales out. `simd -shards N` spawns N worker
// processes of itself (each with its own store under -store DIR) and
// serves the identical API through a frontend router that assigns
// every spec to one worker by rendezvous-hashing its content hash —
// disjoint caches, no coordination, byte-identical responses.
// `simd -backends URL,URL,...` runs the same router over externally
// managed workers (one simd per machine). See internal/shard.
//
// The router degrades gracefully: a dead or circuit-open shard's
// requests fail over to the next shard in the spec's rendezvous rank
// order (tagged X-Failover), per-backend circuit breakers stop paying
// dial timeouts for dead shards, -request-timeout bounds any single
// simulation server-side (504 past budget), and -max-cycles rejects
// pathological cycle budgets at validation time.
//
// Router deployments are elastic: cluster membership is a versioned
// topology of stable shard IDs, and the admin endpoints resize it
// live. POST /admin/shards grows the cluster (the supervisor spawns
// the new workers; the router admits them at the next epoch), POST
// /admin/shards/{id}/drain migrates every result envelope the
// retiring shard holds to its new rendezvous owner — verified
// byte-identical — before retiring it, so warm keys never go cold. A
// router-side result cache (-router-cache-bytes) answers repeat /run
// and /compare requests at the router with zero backend round trips
// (X-Cache: router_hit).
//
// Endpoints (identical in every mode):
//
//	POST /run                {"spec": {...} | "scenario": "name", "model": "tl"|"rtl"}
//	POST /compare            {"spec": {...} | "scenario": "name"}
//	POST /sweep              {"base": {...} | "scenario": "name", "axes": [...]} -> NDJSON rows
//	                         (X-Sweep-ID names the sweep; grids up to -max-sweep-variants)
//	POST /sweep/analyze      same grid + {"metric", "objective", "top_k", "frontier"} -> one
//	                         analysis document (argmin/top-K/groups/Pareto frontier, with
//	                         explicit incomplete metadata when shards or variants failed)
//	GET  /sweep/{id}         the stored sweep's manifest: progress bitmaps and counts
//	GET  /sweep/{id}/resume  ?after=N replays the stored sweep's rows with index > N
//	POST /sweep/{id}/analyze analysis selector only; the grid comes from the stored
//	                         manifest (a completed sweep re-analyzes with zero simulation)
//	POST /results            stolen-variant write-back (X-Result-Key; router internal)
//	GET  /results?prefix=P   enumerate stored result keys (drain migration internal)
//	GET  /scenarios          the built-in scenario library with content hashes
//	GET  /healthz            liveness and load counters (aggregated per shard in router
//	                         modes, with per-shard breaker/process state and the
//	                         topology epoch + membership)
//
// Router modes additionally serve the admin surface:
//
//	GET  /admin/shards            the current topology (epoch + members)
//	POST /admin/shards            grow: {"count": N} spawns supervised workers,
//	                              or {"backends": [...]} admits external URLs
//	POST /admin/shards/{id}/drain migrate the shard's envelopes to their new
//	                              owners, then retire it; returns a drain report
//
// Usage:
//
//	simd [-addr :8080] [-workers N] [-queue N] [-cache N] [-store DIR] [-store-max-bytes N]
//	     [-request-timeout D] [-max-cycles N] [-max-sweep-variants N] [-attempt-timeout D]
//	     [-router-cache-bytes N] [-debug-addr ADDR] [-fair] [-class-weights interactive=4,batch=1]
//	     [-tenant-header X-Tenant] [-shards N | -backends URL,URL,...]
//
// Every mode also serves GET /metrics (Prometheus text; the router
// re-exposes each worker's series under a shard label) and GET
// /version. -debug-addr serves net/http/pprof on a SEPARATE listener
// — profiling stays off the public port and off by default.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "run-farm workers per process (0 = one per CPU)")
	queue := flag.Int("queue", 0, "bounded job-queue depth (0 = 2x workers)")
	cache := flag.Int("cache", service.DefaultCacheEntries, "in-memory result-cache entries")
	storeDir := flag.String("store", "", "disk result-store directory (empty = memory-only; shard mode uses DIR/shard-N per worker)")
	storeMax := flag.Int64("store-max-bytes", 0, "disk store payload budget per process (0 = default)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request simulation deadline, queue wait included (0 = none); over budget answers 504")
	maxCycles := flag.Uint64("max-cycles", 0, "reject specs whose max_cycles exceeds this at validation time (0 = the global bound)")
	maxSweep := flag.Int("max-sweep-variants", service.DefaultMaxSweepVariants, "reject sweep grids whose Cartesian product exceeds this (every tier enforces the same cap)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "router-side timeout per backend attempt (0 = none); a hung shard is failed over")
	routerCache := flag.Int64("router-cache-bytes", 64<<20, "router-side result-cache budget in bytes (<= 0 disables); repeat /run and /compare hits answer at the router with zero backend round trips")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off); NOT inherited by -shards workers")
	fair := flag.Bool("fair", true, "weighted-fair tenant scheduling; false collapses every request into one FIFO queue")
	classWeights := flag.String("class-weights", "", "per-class worker shares as name=weight pairs, e.g. interactive=4,batch=1 (empty = those defaults)")
	tenantHeader := flag.String("tenant-header", service.DefaultTenantHeader, "request header carrying the caller's tenant for fair-share accounting")
	shards := flag.Int("shards", 0, "spawn N local worker processes and serve the sharded router")
	backends := flag.String("backends", "", "comma-separated worker URLs to route over (externally managed shards)")
	flag.Parse()

	if *shards > 0 && *backends != "" {
		fatal("use -shards (local workers) or -backends (external workers), not both")
	}
	weights, err := parseClassWeights(*classWeights)
	if err != nil {
		fatal("%v", err)
	}
	fopt := fairOpts{fair: *fair, weights: weights, weightsArg: *classWeights, tenantHeader: *tenantHeader}
	serveDebug(*debugAddr)
	ropt := shard.Options{
		AttemptTimeout:   *attemptTimeout,
		MaxCycles:        *maxCycles,
		MaxSweepVariants: *maxSweep,
		RouterCacheBytes: *routerCache,
		TenantHeader:     *tenantHeader,
	}
	switch {
	case *shards > 0:
		runSupervised(*addr, *shards, *workers, *queue, *cache, *storeDir, *storeMax, *reqTimeout, ropt, fopt)
	case *backends != "":
		// Tolerate "url, url" spacing: an invisible leading space would
		// otherwise make that shard's URLs unparseable and its whole
		// keyspace 502 against a perfectly healthy backend.
		var urls []string
		for _, u := range strings.Split(*backends, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		ropt.Backends = urls
		runRouter(*addr, ropt, nil, "")
	default:
		runSingle(*addr, *workers, *queue, *cache, *storeDir, *storeMax, *reqTimeout, *maxCycles, *maxSweep, fopt)
	}
}

// fairOpts carries the tenant-scheduling flags: parsed weights for
// the in-process service, the raw -class-weights argument for worker
// inheritance, and the tenant header name shared by every tier.
type fairOpts struct {
	fair         bool
	weights      map[string]int
	weightsArg   string
	tenantHeader string
}

// parseClassWeights decodes -class-weights: comma-separated
// name=weight pairs with positive integer weights. Class NAMES are
// validated by service.New (the scheduler owns that vocabulary);
// this only enforces the pair syntax. Empty input means defaults.
func parseClassWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-class-weights: %q is not name=weight", pair)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-class-weights: weight %q for class %q must be a positive integer", val, name)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simd: "+format+"\n", args...)
	os.Exit(1)
}

// serveDebug starts the pprof listener when -debug-addr is set. It is
// deliberately a separate listener serving http.DefaultServeMux (where
// the net/http/pprof import registers), so profiling endpoints never
// ride the public API port. A bind failure is fatal: asking for
// profiling and silently not getting it is worse than not starting.
// Supervised workers do NOT inherit the flag — N processes cannot
// share one debug port; profile a worker by running it standalone.
func serveDebug(addr string) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("debug listener: %v", err)
	}
	fmt.Printf("simd: pprof on %s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "simd: debug listener: %v\n", err)
		}
	}()
}

// serve runs an HTTP server over ln until SIGINT/SIGTERM, then drains
// it gracefully and runs shutdown hooks (pool close, supervisor stop).
func serve(ln net.Listener, handler http.Handler, onShutdown func()) {
	server := &http.Server{Handler: handler}
	errs := make(chan error, 1)
	go func() { errs <- server.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errs:
		// The accept loop died on its own: still run the shutdown
		// hooks (supervisor stop above all) so a router that falls
		// over never strands its worker processes.
		if onShutdown != nil {
			onShutdown()
		}
		fatal("%v", err)
	case s := <-sig:
		fmt.Printf("simd: %v — draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	server.Shutdown(ctx)
	if onShutdown != nil {
		onShutdown()
	}
}

// listen binds addr and prints the startup banner with the ACTUAL
// bound address — the machine-readable readiness signal the shard
// supervisor (and the smoke harness) parse, which is why it must
// carry the resolved port even when addr said ":0".
func listen(addr, mode string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("simd: serving on %s (%s)\n", ln.Addr(), mode)
	return ln
}

// runSingle is one worker process: the whole service on one
// weighted-fair scheduler.
func runSingle(addr string, workers, queue, cache int, storeDir string, storeMax int64, reqTimeout time.Duration, maxCycles uint64, maxSweep int, fopt fairOpts) {
	srv, err := service.New(service.Options{
		Workers: workers, Queue: queue, CacheEntries: cache,
		StoreDir: storeDir, StoreMaxBytes: storeMax,
		RequestTimeout: reqTimeout, MaxCycles: maxCycles,
		MaxSweepVariants: maxSweep,
		ClassWeights:     fopt.weights,
		TenantHeader:     fopt.tenantHeader,
		DisableFairness:  !fopt.fair,
	})
	if err != nil {
		fatal("%v", err)
	}
	w := workers
	if w <= 0 {
		w = farm.DefaultWorkers()
	}
	persistence := "memory-only"
	if storeDir != "" {
		persistence = "store " + storeDir
	}
	ln := listen(addr, fmt.Sprintf("%d workers, cache %d entries, %s", w, cache, persistence))
	serve(ln, srv.Handler(), srv.Close)
}

// runRouter serves the sharded frontend with the given options (the
// backend list filled in by the caller). sup is non-nil in supervised
// mode and is stopped on shutdown — and on every failure path here,
// so a router that cannot bind its port (or build at all) never exits
// leaving the spawned workers orphaned.
func runRouter(addr string, opt shard.Options, sup *shard.Supervisor, note string) {
	cleanup := func() {
		if sup != nil {
			sup.Stop()
		}
	}
	opt.Supervisor = sup
	rt, err := shard.New(opt)
	if err != nil {
		cleanup()
		fatal("%v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cleanup()
		rt.Close()
		fatal("%v", err)
	}
	if note == "" {
		note = fmt.Sprintf("router over %d external backends", len(opt.Backends))
	}
	fmt.Printf("simd: serving on %s (%s)\n", ln.Addr(), note)
	serve(ln, rt.Handler(), func() {
		rt.Close()
		cleanup()
	})
}

// runSupervised spawns n worker copies of this binary and routes over
// them. Each worker gets its own store directory (DIR/shard-i), so
// the per-shard result stores stay disjoint and a respawned or
// restarted worker replays exactly its own slice of the keyspace. The
// workers inherit the deadline, cycle-cap and fairness flags, so
// cluster and single-process deployments enforce identical limits
// and queue by the same tenant identity.
func runSupervised(addr string, n, workers, queue, cache int, storeDir string, storeMax int64, reqTimeout time.Duration, ropt shard.Options, fopt fairOpts) {
	bin, err := os.Executable()
	if err != nil {
		fatal("%v", err)
	}
	argsFor := func(i int) []string {
		args := []string{
			"-workers", strconv.Itoa(workers),
			"-queue", strconv.Itoa(queue),
			"-cache", strconv.Itoa(cache),
			"-store-max-bytes", strconv.FormatInt(storeMax, 10),
			"-request-timeout", reqTimeout.String(),
			"-max-cycles", strconv.FormatUint(ropt.MaxCycles, 10),
			"-max-sweep-variants", strconv.Itoa(ropt.MaxSweepVariants),
			"-fair=" + strconv.FormatBool(fopt.fair),
			"-tenant-header", fopt.tenantHeader,
		}
		if fopt.weightsArg != "" {
			args = append(args, "-class-weights", fopt.weightsArg)
		}
		if storeDir != "" {
			args = append(args, "-store", filepath.Join(storeDir, fmt.Sprintf("shard-%d", i)))
		}
		return args
	}
	sup, err := shard.Spawn(bin, n, argsFor, os.Stderr)
	if err != nil {
		fatal("%v", err)
	}
	// The per-shard banner: pids and addresses, parsed by the smoke
	// harness to target individual workers (kill/restart drills).
	for _, p := range sup.Procs() {
		fmt.Printf("simd: shard %d pid=%d addr=%s\n", p.Index, p.Pid, p.Addr)
	}
	ropt.Backends = sup.URLs()
	runRouter(addr, ropt, sup, fmt.Sprintf("router over %d local shards", n))
}

// Command simd serves simulations over HTTP: the declarative workload
// specs of internal/spec go in, cycle-accurate results come out.
// Duplicate in-flight requests coalesce into one simulation, repeat
// requests are answered byte-identically from the content-addressed
// result cache (simulations are bit-reproducible, so a spec's hash
// determines its result), and the run queue is bounded — saturation
// answers 503 + Retry-After instead of queueing without limit.
//
// Endpoints:
//
//	POST /run       {"spec": {...} | "scenario": "name", "model": "tl"|"rtl"}
//	POST /compare   {"spec": {...} | "scenario": "name"}
//	GET  /scenarios the built-in scenario library with content hashes
//	GET  /healthz   liveness and load counters
//
// Usage:
//
//	simd [-addr :8080] [-workers N] [-queue N] [-cache N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/farm"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "run-farm workers (0 = one per CPU)")
	queue := flag.Int("queue", 0, "bounded job-queue depth (0 = 2x workers)")
	cache := flag.Int("cache", service.DefaultCacheEntries, "result-cache entries")
	flag.Parse()

	srv := service.New(service.Options{Workers: *workers, Queue: *queue, CacheEntries: *cache})
	defer srv.Close()

	w := *workers
	if w <= 0 {
		w = farm.DefaultWorkers()
	}
	fmt.Printf("simd: serving on %s (%d workers, cache %d entries)\n", *addr, w, *cache)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
}

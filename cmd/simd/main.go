// Command simd serves simulations over HTTP: the declarative workload
// specs of internal/spec go in, cycle-accurate results come out.
// Duplicate in-flight requests coalesce into one simulation, repeat
// requests are answered byte-identically from the content-addressed
// result cache (simulations are bit-reproducible, so a spec's hash
// determines its result), and the run queue is bounded — saturation
// answers 503 + Retry-After instead of queueing without limit.
//
// With -store DIR the result cache is two-tier: an in-memory LRU in
// front of a disk-backed store, so a restarted simd serves previously
// computed specs byte-identically (X-Cache: hit) without
// re-simulating. The store is size-bounded (-store-max-bytes) and
// evicts by least-recent access.
//
// Endpoints:
//
//	POST /run       {"spec": {...} | "scenario": "name", "model": "tl"|"rtl"}
//	POST /compare   {"spec": {...} | "scenario": "name"}
//	POST /sweep     {"base": {...} | "scenario": "name", "axes": [...]} -> NDJSON rows
//	GET  /scenarios the built-in scenario library with content hashes
//	GET  /healthz   liveness and load counters
//
// Usage:
//
//	simd [-addr :8080] [-workers N] [-queue N] [-cache N] [-store DIR] [-store-max-bytes N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/farm"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "run-farm workers (0 = one per CPU)")
	queue := flag.Int("queue", 0, "bounded job-queue depth (0 = 2x workers)")
	cache := flag.Int("cache", service.DefaultCacheEntries, "in-memory result-cache entries")
	storeDir := flag.String("store", "", "disk result-store directory (empty = memory-only)")
	storeMax := flag.Int64("store-max-bytes", 0, "disk store payload budget (0 = default)")
	flag.Parse()

	srv, err := service.New(service.Options{
		Workers: *workers, Queue: *queue, CacheEntries: *cache,
		StoreDir: *storeDir, StoreMaxBytes: *storeMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	w := *workers
	if w <= 0 {
		w = farm.DefaultWorkers()
	}
	persistence := "memory-only"
	if *storeDir != "" {
		persistence = "store " + *storeDir
	}
	fmt.Printf("simd: serving on %s (%d workers, cache %d entries, %s)\n", *addr, w, *cache, persistence)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
}

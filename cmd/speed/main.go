// Command speed regenerates the paper's simulation-speed experiment
// (§4): the same workload is timed on the pin-accurate model and the
// TLM, and a single-master workload is timed on the TLM ("pure bus
// performance"). The paper reports 0.47 Kcycles/s (RTL), 166 Kcycles/s
// (TL multi-master, 353x) and 456 Kcycles/s (TL single-master).
// Absolute numbers depend on the host and on how abstract the baseline
// is; the shape to check is TL >> RTL and single-master > multi-master.
//
// Usage:
//
//	speed [-txns N] [-repeat N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	txns := flag.Int("txns", 3000, "transactions per master")
	repeat := flag.Int("repeat", 3, "repetitions (best run reported)")
	flag.Parse()

	multi, single := core.SpeedWorkloads(*txns)
	best := core.MeasureSpeed(multi, single)
	for i := 1; i < *repeat; i++ {
		sc := core.MeasureSpeed(multi, single)
		if sc.TLM.Wall < best.TLM.Wall {
			best.TLM = sc.TLM
		}
		if sc.RTL.Wall < best.RTL.Wall {
			best.RTL = sc.RTL
		}
		if sc.SingleTLM.Wall < best.SingleTLM.Wall {
			best.SingleTLM = sc.SingleTLM
		}
	}
	if r := best.RTL.KCyclesPerSec(); r > 0 {
		best.Speedup = best.TLM.KCyclesPerSec() / r
	}

	fmt.Println("Simulation speed experiment (paper §4)")
	fmt.Println()
	core.WriteSpeedReport(os.Stdout, best)
	fmt.Println()
	switch {
	case best.Speedup < 2:
		fmt.Println("shape check FAILED: TL not meaningfully faster than the pin-accurate model")
		os.Exit(1)
	case best.SingleTLM.KCyclesPerSec() <= best.TLM.KCyclesPerSec():
		fmt.Println("shape check FAILED: single-master TL not faster than multi-master TL")
		os.Exit(1)
	default:
		fmt.Println("shape check passed: TL >> pin-accurate, single-master TL fastest (paper: 353x / 166 vs 456 Kcycles/s)")
	}
}

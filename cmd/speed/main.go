// Command speed regenerates the paper's simulation-speed experiment
// (§4): the same workload is timed on the pin-accurate model and the
// TLM, and a single-master workload is timed on the TLM ("pure bus
// performance"). The paper reports 0.47 Kcycles/s (RTL), 166 Kcycles/s
// (TL multi-master, 353x) and 456 Kcycles/s (TL single-master).
// Absolute numbers depend on the host and on how abstract the baseline
// is; the shape to check is TL >> RTL and single-master > multi-master.
//
// By default the repetitions run serially so single-run wall-clock
// numbers stay honest: nothing else competes for the cores while a
// model is being timed. -reps N instead shards N full measurement
// repetitions across the run farm — the best-of filter still rejects
// the slowed-down runs, so the reported (best) Kcycles/s stay close
// to the serial numbers while the experiment finishes in roughly the
// wall-clock of one repetition; use it for quick shape checks, not
// for quotable absolute numbers.
//
// Usage:
//
//	speed [-txns N] [-repeat N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/farm"
)

// better folds b into best, keeping the faster wall-clock per model.
func better(best *core.SpeedComparison, sc core.SpeedComparison) {
	if sc.TLM.Wall < best.TLM.Wall {
		best.TLM = sc.TLM
	}
	if sc.RTL.Wall < best.RTL.Wall {
		best.RTL = sc.RTL
	}
	if sc.SingleTLM.Wall < best.SingleTLM.Wall {
		best.SingleTLM = sc.SingleTLM
	}
}

func main() {
	txns := flag.Int("txns", 3000, "transactions per master")
	repeat := flag.Int("repeat", 3, "serial repetitions (best run reported)")
	reps := flag.Int("reps", 1, "farm-sharded repetitions; >1 times runs concurrently across cores (fast, but co-scheduling skews absolute wall-clock)")
	flag.Parse()

	multi, single := core.SpeedWorkloads(*txns)
	var best core.SpeedComparison
	if *reps > 1 {
		// Farm-level repetition sharding: each repetition is a full
		// three-run measurement; repetitions are independent, so they
		// scale across cores.
		all := farm.Map(0, *reps, func(int) core.SpeedComparison {
			return core.MeasureSpeed(multi, single)
		})
		best = all[0]
		for _, sc := range all[1:] {
			better(&best, sc)
		}
		fmt.Printf("note: %d repetitions farm-sharded across cores; absolute Kcycles/s are conservative\n\n", *reps)
	} else {
		best = core.MeasureSpeed(multi, single)
		for i := 1; i < *repeat; i++ {
			better(&best, core.MeasureSpeed(multi, single))
		}
	}
	if r := best.RTL.KCyclesPerSec(); r > 0 {
		best.Speedup = best.TLM.KCyclesPerSec() / r
	}

	fmt.Println("Simulation speed experiment (paper §4)")
	fmt.Println()
	core.WriteSpeedReport(os.Stdout, best)
	fmt.Println()
	switch {
	case best.Speedup < 2:
		fmt.Println("shape check FAILED: TL not meaningfully faster than the pin-accurate model")
		os.Exit(1)
	case best.SingleTLM.KCyclesPerSec() <= best.TLM.KCyclesPerSec():
		fmt.Println("shape check FAILED: single-master TL not faster than multi-master TL")
		os.Exit(1)
	default:
		fmt.Println("shape check passed: TL >> pin-accurate, single-master TL fastest (paper: 353x / 166 vs 456 Kcycles/s)")
	}
}

// Command ahbsim runs the AHB+ transaction-level model on a selectable
// workload and prints the bus profile (utilization, contention,
// throughput, per-master latency) plus optional transaction traces.
//
// Usage:
//
//	ahbsim [-workload seq|rand|burst|stream|mixed] [-masters N]
//	       [-txns N] [-wb depth] [-pipelining] [-bi] [-trace N]
//	       [-config file.json] [-model tl|rtl]
package main

import (
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	f := cli.Register(flag.CommandLine)
	model := flag.String("model", "tl", "abstraction level: tl|rtl")
	flag.Parse()

	m := core.TLM
	if *model == "rtl" {
		m = core.RTL
	}
	os.Exit(cli.Execute(f, m, os.Stdout))
}
